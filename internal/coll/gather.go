package coll

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/sim"
)

// Gatherv collects every rank's contribution at root: send is this rank's
// contribution, recvs[i] is where rank i's contribution lands at root.
// Like the rest of the subsystem the full recvs vector must be passed on
// EVERY rank (SPMD full-args), which is what lets remote node leaders
// size their aggregation staging without a size exchange.
func (e *Engine) Gatherv(p *sim.Proc, r *mpi.Rank, root int, send VOp, recvs []VOp) error {
	if len(recvs) != e.size() {
		return fmt.Errorf("coll: Gatherv: %d recv slots for %d ranks", len(recvs), e.size())
	}
	if root < 0 || root >= e.size() {
		return fmt.Errorf("coll: Gatherv: root %d out of range", root)
	}
	alg := e.tuning.Gatherv
	if err := validAlg("gatherv", alg, Linear, Hierarchical); err != nil {
		return err
	}
	if alg == Auto {
		if e.topoHierarchical() {
			alg = Hierarchical
		} else {
			alg = Linear
		}
	}
	alg = e.flatten(alg)
	c := e.begin(r, p, len(recvs)+1)
	var err error
	if alg == Linear {
		err = c.gathervLinear(root, send, recvs)
	} else {
		err = c.gathervHier(root, send, recvs)
	}
	return c.finish("gatherv", alg, err)
}

func (c *call) gathervLinear(root int, send VOp, recvs []VOp) error {
	if c.rank() != root {
		return c.exchangePhase(nil,
			[]leg{{peer: root, tag: c.tag(tagData), buf: send.Buf, l: send.Type, count: send.Count}})
	}
	rl := make([]leg, 0, len(recvs))
	for peer, op := range recvs {
		rl = append(rl, leg{peer: peer, tag: c.tag(tagData), buf: op.Buf, l: op.Type, count: op.Count})
	}
	return c.exchangePhase(rl,
		[]leg{{peer: root, tag: c.tag(tagData), buf: send.Buf, l: send.Type, count: send.Count}})
}

// gathervHier: remote nodes aggregate on their leader (one bundle per
// node crosses the inter-node link to root), root's own node sends
// direct; root unpacks every remote contribution in one fused launch.
func (c *call) gathervHier(root int, send VOp, recvs []VOp) error {
	e, r := c.e, c.r
	id := r.ID()
	node := e.nodeOf(id)
	rootNode := e.nodeOf(root)
	locals := e.localRanks(node)
	leader := e.leaderOf(node)
	nodes := e.nodes()

	// Per-node staged region: contributions of the node's ranks, rank asc.
	nodeTotal := func(n int) int64 {
		var t int64
		for _, lr := range e.localRanks(n) {
			t += recvs[lr].bytes()
		}
		return t
	}

	if node == rootNode && id != root {
		// Same node as root: one direct IPC leg.
		if send.bytes() == 0 {
			return nil
		}
		c.bytes += send.bytes()
		c.all = append(c.all, c.bind(r.IsendRaw(c.p, root, c.tag(tagDirect), send.Buf, send.Type, send.Count)))
		return nil
	}
	if id != root && id != leader {
		// Remote non-leader: hand the contribution to the node leader.
		if send.bytes() == 0 {
			return nil
		}
		c.bytes += send.bytes()
		c.all = append(c.all, c.bind(r.IsendRaw(c.p, leader, c.tag(tagGather), send.Buf, send.Type, send.Count)))
		return nil
	}
	if id != root {
		// Remote leader: aggregate the node region, ship one bundle.
		total := nodeTotal(node)
		if total == 0 {
			return nil
		}
		staging := c.staging("gv-node", total)
		loff := make(map[int]int64, len(locals))
		var at int64
		for _, lr := range locals {
			loff[lr] = at
			at += recvs[lr].bytes()
		}
		if c.batch != nil {
			c.openWin()
		}
		var gatherRecvs []*mpi.Request
		for _, lr := range locals {
			if lr == id || recvs[lr].bytes() == 0 {
				continue
			}
			q := c.bind(r.IrecvRaw(c.p, lr, c.tag(tagGather), staging, c.bytesAt(loff[lr], recvs[lr].bytes()), 1))
			c.all = append(c.all, q)
			gatherRecvs = append(gatherRecvs, q)
		}
		var packHs []mpi.Handle
		if send.bytes() > 0 {
			e := r.LayoutEntry(send.Type, send.Count)
			job := pack.NewJob(pack.OpPack, send.Buf, staging, e.Blocks)
			job.Plan = e.Plan
			job.TargetOff = loff[id]
			packHs = append(packHs, r.Scheme().Pack(c.p, job))
			c.bytes += send.bytes()
		}
		if c.batch != nil {
			c.closeWin()
			c.openWin()
			c.gate(gatherRecvs)
			c.closeWin()
		}
		if err := c.subsetWait(gatherRecvs); err != nil {
			return err
		}
		if err := c.waitHandles(packHs); err != nil {
			return err
		}
		c.bytes += total
		c.all = append(c.all, c.bind(r.IsendRaw(c.p, root, c.tag(tagBundle), staging, c.bytesAt(0, total), 1)))
		return nil
	}

	// Root: bundles from remote leaders, direct legs from local peers,
	// the self leg via loopback, then one fused unpack of every remote
	// contribution.
	var totalIn int64
	inOff := make([]int64, nodes)
	for ns := 0; ns < nodes; ns++ {
		if ns == rootNode {
			continue
		}
		inOff[ns] = totalIn
		totalIn += nodeTotal(ns)
	}
	stagingIn := c.staging("gv-in", totalIn)
	if c.batch != nil {
		c.openWin()
	}
	var bundleRecvs, directRecvs []*mpi.Request
	for ns := 0; ns < nodes; ns++ {
		if ns == rootNode || nodeTotal(ns) == 0 {
			continue
		}
		q := c.bind(r.IrecvRaw(c.p, e.leaderOf(ns), c.tag(tagBundle), stagingIn, c.bytesAt(inOff[ns], nodeTotal(ns)), 1))
		c.all = append(c.all, q)
		bundleRecvs = append(bundleRecvs, q)
	}
	for _, lr := range locals {
		if recvs[lr].bytes() == 0 {
			continue
		}
		tag := c.tag(tagDirect)
		q := c.bind(r.IrecvRaw(c.p, lr, tag, recvs[lr].Buf, recvs[lr].Type, recvs[lr].Count))
		c.all = append(c.all, q)
		directRecvs = append(directRecvs, q)
	}
	if send.bytes() > 0 {
		c.bytes += send.bytes()
		c.all = append(c.all, c.bind(r.IsendRaw(c.p, id, c.tag(tagDirect), send.Buf, send.Type, send.Count)))
	}
	if c.batch != nil {
		c.closeWin()
		c.openWin()
		c.gate(directRecvs)
		c.closeWin()
	}
	if err := c.subsetWait(bundleRecvs); err != nil {
		return err
	}
	if c.batch != nil {
		c.openWin()
	}
	var unpackHs []mpi.Handle
	for ns := 0; ns < nodes; ns++ {
		if ns == rootNode {
			continue
		}
		at := inOff[ns]
		for _, lr := range e.localRanks(ns) {
			n := recvs[lr].bytes()
			if n == 0 {
				continue
			}
			unpackHs = append(unpackHs, c.unpackJob(stagingIn, recvs[lr].Buf, recvs[lr].Type, recvs[lr].Count, at))
			at += n
		}
	}
	if c.batch != nil {
		c.closeWin()
	}
	return c.waitHandles(unpackHs)
}

// Scatterv distributes per-rank slots from root: sends[i] is what rank i
// receives, recv is where this rank lands it. The full sends vector must
// be passed on every rank (SPMD full-args).
func (e *Engine) Scatterv(p *sim.Proc, r *mpi.Rank, root int, sends []VOp, recv VOp) error {
	if len(sends) != e.size() {
		return fmt.Errorf("coll: Scatterv: %d send slots for %d ranks", len(sends), e.size())
	}
	if root < 0 || root >= e.size() {
		return fmt.Errorf("coll: Scatterv: root %d out of range", root)
	}
	alg := e.tuning.Scatterv
	if err := validAlg("scatterv", alg, Linear, Hierarchical); err != nil {
		return err
	}
	if alg == Auto {
		if e.topoHierarchical() {
			alg = Hierarchical
		} else {
			alg = Linear
		}
	}
	alg = e.flatten(alg)
	c := e.begin(r, p, len(sends)+1)
	var err error
	if alg == Linear {
		err = c.scattervLinear(root, sends, recv)
	} else {
		err = c.scattervHier(root, sends, recv)
	}
	return c.finish("scatterv", alg, err)
}

func (c *call) scattervLinear(root int, sends []VOp, recv VOp) error {
	rl := []leg{{peer: root, tag: c.tag(tagData), buf: recv.Buf, l: recv.Type, count: recv.Count}}
	if c.rank() != root {
		return c.exchangePhase(rl, nil)
	}
	sl := make([]leg, 0, len(sends))
	for peer, op := range sends {
		sl = append(sl, leg{peer: peer, tag: c.tag(tagData), buf: op.Buf, l: op.Type, count: op.Count})
	}
	return c.exchangePhase(rl, sl)
}

// scattervHier: root packs every remote rank's slot into per-node bundles
// in ONE fused launch, ships one bundle per node to its leader, and the
// leaders slice locally over NVLink.
func (c *call) scattervHier(root int, sends []VOp, recv VOp) error {
	e, r := c.e, c.r
	id := r.ID()
	node := e.nodeOf(id)
	rootNode := e.nodeOf(root)
	locals := e.localRanks(node)
	leader := e.leaderOf(node)
	nodes := e.nodes()

	nodeTotal := func(n int) int64 {
		var t int64
		for _, lr := range e.localRanks(n) {
			t += sends[lr].bytes()
		}
		return t
	}

	if id == root {
		var totalOut int64
		outOff := make([]int64, nodes)
		for nd := 0; nd < nodes; nd++ {
			if nd == rootNode {
				continue
			}
			outOff[nd] = totalOut
			totalOut += nodeTotal(nd)
		}
		stagingOut := c.staging("sv-out", totalOut)
		if c.batch != nil {
			c.openWin()
		}
		var packHs []mpi.Handle
		for nd := 0; nd < nodes; nd++ {
			if nd == rootNode {
				continue
			}
			at := outOff[nd]
			for _, lr := range e.localRanks(nd) {
				n := sends[lr].bytes()
				if n == 0 {
					continue
				}
				e := r.LayoutEntry(sends[lr].Type, sends[lr].Count)
				job := pack.NewJob(pack.OpPack, sends[lr].Buf, stagingOut, e.Blocks)
				job.Plan = e.Plan
				job.TargetOff = at
				packHs = append(packHs, r.Scheme().Pack(c.p, job))
				c.bytes += n
				at += n
			}
		}
		var selfRecv []*mpi.Request
		for _, lr := range locals {
			if sends[lr].bytes() == 0 {
				continue
			}
			c.bytes += sends[lr].bytes()
			c.all = append(c.all, c.bind(r.IsendRaw(c.p, lr, c.tag(tagDirect), sends[lr].Buf, sends[lr].Type, sends[lr].Count)))
		}
		if recv.bytes() > 0 {
			q := c.bind(r.IrecvRaw(c.p, id, c.tag(tagDirect), recv.Buf, recv.Type, recv.Count))
			c.all = append(c.all, q)
			selfRecv = append(selfRecv, q)
		}
		if c.batch != nil {
			c.closeWin()
			c.openWin()
			c.gate(selfRecv)
			c.closeWin()
		}
		if err := c.waitHandles(packHs); err != nil {
			return err
		}
		for nd := 0; nd < nodes; nd++ {
			if nd == rootNode || nodeTotal(nd) == 0 {
				continue
			}
			c.bytes += nodeTotal(nd)
			c.all = append(c.all, c.bind(r.IsendRaw(c.p, e.leaderOf(nd), c.tag(tagBundle), stagingOut, c.bytesAt(outOff[nd], nodeTotal(nd)), 1)))
		}
		return nil
	}

	if node == rootNode {
		// Root's node: one direct leg from root, fused unpack via the
		// windowed gate.
		return c.exchangePhase(
			[]leg{{peer: root, tag: c.tag(tagDirect), buf: recv.Buf, l: recv.Type, count: recv.Count}}, nil)
	}
	if id == leader {
		// Remote leader: take the node bundle, slice it out locally, and
		// unpack our own slot — slice IPC + own unpack fuse.
		total := nodeTotal(node)
		if total == 0 {
			return nil
		}
		staging := c.staging("sv-node", total)
		q := c.bind(r.IrecvRaw(c.p, root, c.tag(tagBundle), staging, c.bytesAt(0, total), 1))
		c.all = append(c.all, q)
		if err := c.subsetWait([]*mpi.Request{q}); err != nil {
			return err
		}
		if c.batch != nil {
			c.openWin()
		}
		var unpackHs []mpi.Handle
		var at int64
		for _, lr := range locals {
			n := sends[lr].bytes()
			if n == 0 {
				continue
			}
			if lr == id {
				unpackHs = append(unpackHs, c.unpackJob(staging, recv.Buf, recv.Type, recv.Count, at))
			} else {
				c.all = append(c.all, c.bind(r.IsendRaw(c.p, lr, c.tag(tagSlice), staging, c.bytesAt(at, n), 1)))
			}
			at += n
		}
		if c.batch != nil {
			c.closeWin()
		}
		return c.waitHandles(unpackHs)
	}
	// Remote non-leader: our slice arrives from the leader.
	return c.exchangePhase(
		[]leg{{peer: leader, tag: c.tag(tagSlice), buf: recv.Buf, l: recv.Type, count: recv.Count}}, nil)
}
