package coll_test

import (
	"bytes"
	"testing"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// runHierAlltoallw runs a rendezvous-sized hierarchical Alltoallw on the
// 8-rank Lassen world and reports total kernel launches and completion
// time, with collective-scope fusion windows on or off.
func runHierAlltoallw(t *testing.T, disableWindows bool, mut func(*mpi.Config)) (launches int64, elapsed int64, w *mpi.World) {
	t.Helper()
	w = collWorld("Proposed-Tuned", mut)
	ops := makeA2AOps(w, bigVec())
	e := coll.New(w, coll.Tuning{Alltoallw: coll.Hierarchical, DisableFusionWindow: disableWindows})
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Alltoallw(p, r, ops[r.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", r.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.Size(); i++ {
		launches += w.Rank(i).Dev.Stats.KernelLaunches
	}
	return launches, w.Env.Now(), w
}

// TestFusedHierarchicalAlltoallwBeatsUnfused is the subsystem's headline
// acceptance criterion: on the 8-rank Lassen model, collective-scope
// fusion windows must give STRICTLY fewer kernel launches and STRICTLY
// lower modeled completion time than the same hierarchical schedule with
// per-message launches.
func TestFusedHierarchicalAlltoallwBeatsUnfused(t *testing.T) {
	fusedLaunches, fusedTime, _ := runHierAlltoallw(t, false, nil)
	unfusedLaunches, unfusedTime, _ := runHierAlltoallw(t, true, nil)
	if fusedLaunches >= unfusedLaunches {
		t.Errorf("fused launches %d, want strictly fewer than unfused %d", fusedLaunches, unfusedLaunches)
	}
	if fusedTime >= unfusedTime {
		t.Errorf("fused completion %d ns, want strictly lower than unfused %d ns", fusedTime, unfusedTime)
	}
	t.Logf("hierarchical alltoallw 8 ranks: fused %d launches / %d ns, unfused %d launches / %d ns",
		fusedLaunches, fusedTime, unfusedLaunches, unfusedTime)
}

// TestWindowStatsAccrue pins that the collective windows actually engage
// the fusion scheduler: window-close flushes must be recorded, proving
// the launch reduction comes from the window mechanism and not a side
// effect of scheduling order.
func TestWindowStatsAccrue(t *testing.T) {
	w := collWorld("Proposed-Tuned", nil)
	ops := makeA2AOps(w, bigVec())
	e := coll.New(w, coll.Tuning{Alltoallw: coll.Linear})
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Alltoallw(p, r, ops[r.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", r.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var flushes, held int64
	for i := 0; i < w.Size(); i++ {
		f, ok := w.Rank(i).Scheme().(*schemes.Fusion)
		if !ok {
			t.Fatalf("rank %d: Proposed-Tuned scheme is %T, want *schemes.Fusion", i, w.Rank(i).Scheme())
		}
		flushes += f.Sched.Stats.WindowFlushes
		held += f.Sched.Stats.HeldFlushes
	}
	if flushes == 0 {
		t.Error("no window flushes recorded — collective windows never engaged")
	}
	if held == 0 {
		t.Error("no held flushes recorded — windows never deferred a launch")
	}
}

// --- timeline: reconciliation and determinism ---

// tracedHier runs a traced hierarchical Alltoallw and returns the world.
func tracedHier(t *testing.T) *mpi.World {
	t.Helper()
	w := collWorld("Proposed-Tuned", func(c *mpi.Config) { c.Timeline = &timeline.Options{} })
	ops := makeA2AOps(w, denseVec())
	e := coll.New(w, coll.Tuning{Alltoallw: coll.Hierarchical})
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Alltoallw(p, r, ops[r.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", r.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestCollTimelineReconcilesWithBreakdown: every cost the collective
// engine charges (schedule passes, gate polls, handle polls) is mirrored
// as a coll-layer timeline span, so per-rank timeline sums must equal the
// Breakdown exactly — same invariant the pt2pt layers keep.
func TestCollTimelineReconcilesWithBreakdown(t *testing.T) {
	w := tracedHier(t)
	tl := w.Timeline()
	if tl == nil {
		t.Fatal("traced world must expose a timeline")
	}
	sawColl := false
	for rk := 0; rk < w.Size(); rk++ {
		rec := tl.Rank(rk)
		sums := rec.Sums()
		bd := w.Rank(rk).Trace
		if sums.Total() != bd.Total() || sums.String() != bd.String() {
			t.Errorf("rank %d: timeline sums != breakdown\n  timeline:  %s\n  breakdown: %s", rk, sums, bd)
		}
		for _, ev := range rec.Events() {
			if ev.Layer == timeline.LayerColl {
				sawColl = true
			}
		}
	}
	if !sawColl {
		t.Error("no coll-layer events recorded")
	}
}

// TestHierarchicalTimelineDeterministic: two identical traced runs must
// produce byte-identical Chrome traces — the coll-smoke determinism diff.
func TestHierarchicalTimelineDeterministic(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		w := tracedHier(t)
		if err := w.Timeline().WriteChrome(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("hierarchical alltoallw timeline differs between identical runs")
	}
}
