package coll_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/coll"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// The rank-crash chaos matrix: every collective algorithm is driven past a
// deterministic rank crash, for several seeds. The self-healing contract
// under fail-stop faults is ULFM's, not delivery's:
//
//   1. the run terminates (no stall) within the failure-detector bound,
//   2. every survivor comes back with a typed error — *mpi.RankFailedError
//      from direct detection or mpi.ErrCommRevoked from the in-band
//      revocation flood — never an untyped one and never a false success,
//   3. nothing leaks: no registered requests, no half-fused pack jobs,
//   4. the same seed reproduces the identical run bit-for-bit (final
//      clock, fault-event sequence, per-rank timeline sums).

// chaosCase names one (collective, algorithm) cell of the matrix.
type chaosCase struct {
	name   string
	tuning coll.Tuning
	run    func(e *coll.Engine, r *mpi.Rank, p *sim.Proc, st *chaosState) error
}

// chaosState owns every op shape the matrix cells draw from, all built on
// the same world so one allocation pass serves any cell.
type chaosState struct {
	a2a      [][]coll.WOp
	agSends  []coll.VOp
	agRecvs  [][]coll.VOp
	svSends  [][]coll.VOp
	svRecvs  []coll.VOp
	neighbor [][]mpi.NeighborOp
}

func buildChaosState(w *mpi.World) *chaosState {
	l := denseVec()
	st := &chaosState{}
	st.a2a = makeA2AOps(w, l)
	st.agSends, st.agRecvs = makeAG(w, l)
	size := w.Size()
	st.svSends = make([][]coll.VOp, size)
	st.svRecvs = make([]coll.VOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		st.svSends[r] = make([]coll.VOp, size)
		for dst := 0; dst < size; dst++ {
			sb := dev.Alloc(fmt.Sprintf("cs-s-%d-%d", r, dst), int(l.ExtentBytes)*3)
			st.svSends[r][dst] = coll.VOp{Buf: sb, Type: l, Count: 1 + dst%3}
		}
		rb := dev.Alloc(fmt.Sprintf("cs-r-%d", r), int(l.ExtentBytes)*3)
		st.svRecvs[r] = coll.VOp{Buf: rb, Type: l, Count: 1 + r%3}
	}
	st.neighbor = makeNeighborOps(w, l)
	return st
}

func chaosMatrix() []chaosCase {
	var cases []chaosCase
	for _, alg := range []coll.Algorithm{coll.Linear, coll.Pairwise, coll.Hierarchical} {
		alg := alg
		cases = append(cases, chaosCase{
			name:   "alltoallw/" + alg.String(),
			tuning: coll.Tuning{Alltoallw: alg},
			run: func(e *coll.Engine, r *mpi.Rank, p *sim.Proc, st *chaosState) error {
				return e.Alltoallw(p, r, st.a2a[r.ID()])
			},
		})
	}
	for _, alg := range []coll.Algorithm{coll.Linear, coll.Ring, coll.Bruck, coll.RecursiveDoubling, coll.Hierarchical} {
		alg := alg
		cases = append(cases, chaosCase{
			name:   "allgatherv/" + alg.String(),
			tuning: coll.Tuning{Allgatherv: alg},
			run: func(e *coll.Engine, r *mpi.Rank, p *sim.Proc, st *chaosState) error {
				return e.Allgatherv(p, r, st.agSends[r.ID()], st.agRecvs[r.ID()])
			},
		})
	}
	for _, alg := range []coll.Algorithm{coll.Linear, coll.Hierarchical} {
		alg := alg
		cases = append(cases, chaosCase{
			name:   "gatherv/" + alg.String(),
			tuning: coll.Tuning{Gatherv: alg},
			run: func(e *coll.Engine, r *mpi.Rank, p *sim.Proc, st *chaosState) error {
				return e.Gatherv(p, r, 5, st.agSends[r.ID()], st.agRecvs[r.ID()])
			},
		})
		cases = append(cases, chaosCase{
			name:   "scatterv/" + alg.String(),
			tuning: coll.Tuning{Scatterv: alg},
			run: func(e *coll.Engine, r *mpi.Rank, p *sim.Proc, st *chaosState) error {
				return e.Scatterv(p, r, 5, st.svSends[r.ID()], st.svRecvs[r.ID()])
			},
		})
	}
	cases = append(cases, chaosCase{
		name:   "neighbor/indexed-fifo",
		tuning: coll.Tuning{},
		run: func(e *coll.Engine, r *mpi.Rank, p *sim.Proc, st *chaosState) error {
			return e.NeighborAlltoallw(p, r, st.neighbor[r.ID()])
		},
	})
	return cases
}

// chaosObservation is everything one seeded run exposes for assertions and
// for the bit-identical replay comparison.
type chaosObservation struct {
	finalClock int64
	crashed    []int
	rankErrs   []error
	faultEvs   []string
	tlSums     []string
	leaked     int
	fusedLeft  int
}

// runChaosCell drives one matrix cell once: survivors loop the collective
// until they observe an error or virtual time passes well beyond the crash
// plus the detection bound, so the failure window is always exercised.
func runChaosCell(t *testing.T, cc chaosCase, seed uint64) *chaosObservation {
	t.Helper()
	plan, err := fault.Preset("rank-crash", seed)
	if err != nil {
		t.Fatal(err)
	}
	w := collWorld("Proposed-Tuned", func(c *mpi.Config) {
		c.Faults = plan
		c.Timeline = &timeline.Options{}
	})
	st := buildChaosState(w)
	e := coll.New(w, cc.tuning)
	obs := &chaosObservation{rankErrs: make([]error, w.Size())}
	const horizon = 400_000 // crash ≤45µs + detect ≤~220µs, plus slack
	runErr := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		for obs.rankErrs[r.ID()] == nil && p.Now() < horizon {
			obs.rankErrs[r.ID()] = cc.run(e, r, p, st)
		}
	})
	if runErr != nil {
		t.Fatalf("%s seed %d: world did not terminate cleanly: %v", cc.name, seed, runErr)
	}
	obs.finalClock = w.Env.Now()
	obs.crashed = w.CrashedRanks()
	for _, ev := range w.FaultEvents() {
		obs.faultEvs = append(obs.faultEvs, fmt.Sprintf("%d %s %s %s", ev.At, ev.Site, ev.Kind, ev.Detail))
	}
	for i := 0; i < w.Size(); i++ {
		obs.tlSums = append(obs.tlSums, w.Rank(i).Timeline().Sums().String())
	}
	obs.leaked = w.LeakedRequests()
	obs.fusedLeft = w.PendingFusedJobs()
	return obs
}

func assertChaosContract(t *testing.T, cc chaosCase, seed uint64, obs *chaosObservation) {
	t.Helper()
	if len(obs.crashed) != 1 {
		t.Fatalf("%s seed %d: crashed ranks %v, want exactly one", cc.name, seed, obs.crashed)
	}
	dead := obs.crashed[0]
	for i, rerr := range obs.rankErrs {
		if i == dead {
			continue // killed mid-body; its slot is whatever it last wrote
		}
		if rerr == nil {
			t.Fatalf("%s seed %d: survivor %d returned success across the failure window", cc.name, seed, i)
		}
		if !errors.Is(rerr, mpi.ErrRankFailed) && !errors.Is(rerr, mpi.ErrCommRevoked) {
			t.Fatalf("%s seed %d: survivor %d got untyped error: %v", cc.name, seed, i, rerr)
		}
	}
	if obs.leaked != 0 {
		t.Fatalf("%s seed %d: %d leaked requests", cc.name, seed, obs.leaked)
	}
	if obs.fusedLeft != 0 {
		t.Fatalf("%s seed %d: %d fused jobs stranded", cc.name, seed, obs.fusedLeft)
	}
}

func TestCollectivesRankCrashMatrix(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, cc := range chaosMatrix() {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			for _, seed := range seeds {
				assertChaosContract(t, cc, seed, runChaosCell(t, cc, seed))
			}
		})
	}
}

// TestShrinkRetryByteExact is the checkpointless-recovery acceptance run:
// a rank dies mid-Alltoallw, every survivor observes a typed failure,
// agrees on the outcome, shrinks the world communicator, and retries the
// collective on the dense survivor comm with fresh buffers — and the
// retried collective must deliver byte-exactly what a plain sequential
// pack/scatter model predicts.
func TestShrinkRetryByteExact(t *testing.T) {
	const deadRank = 1
	plan := &fault.Plan{
		Seed: 11,
		Proc: fault.ProcPlan{Crashes: []fault.Crash{{Rank: deadRank, AtNs: 20_000}}},
	}
	w := collWorld("Proposed-Tuned", func(c *mpi.Config) { c.Faults = plan })
	l := denseVec()
	ops := makeA2AOps(w, l)
	e := coll.New(w, coll.Tuning{Alltoallw: coll.Linear})

	// Retry state, preallocated for the survivor set the deterministic
	// plan guarantees: comm rank == dense re-rank over world \ {deadRank}.
	nSurv := w.Size() - 1
	world2comm := make([]int, w.Size())
	comm2world := make([]int, 0, nSurv)
	for i, cr := 0, 0; i < w.Size(); i++ {
		if i == deadRank {
			world2comm[i] = -1
			continue
		}
		world2comm[i] = cr
		comm2world = append(comm2world, i)
		cr++
	}
	retry := make([][]coll.WOp, nSurv)
	for cr := 0; cr < nSurv; cr++ {
		dev := w.Rank(comm2world[cr]).Dev
		retry[cr] = make([]coll.WOp, nSurv)
		for cp := 0; cp < nSurv; cp++ {
			count := 1 + (cr+cp)%3
			sb := dev.Alloc(fmt.Sprintf("rt-s-%d-%d", cr, cp), int(l.ExtentBytes)*3)
			rb := dev.Alloc(fmt.Sprintf("rt-r-%d-%d", cr, cp), int(l.ExtentBytes)*3)
			rng := rand.New(rand.NewSource(int64(5000 + cr*100 + cp)))
			rng.Read(sb.Data)
			rng.Read(rb.Data) // junk the recv side so untouched bytes are visible
			retry[cr][cp] = coll.WOp{SendBuf: sb, SendType: l, SendCount: count, RecvBuf: rb, RecvType: l, RecvCount: count}
		}
	}
	// The sequential model: gather each sender leg's blocks into a wire
	// stream, scatter it through the receiver layout. Computed before the
	// run from the same deterministic fills.
	expect := make([][][]byte, nSurv)
	for cr := 0; cr < nSurv; cr++ {
		expect[cr] = make([][]byte, nSurv)
		for cp := 0; cp < nSurv; cp++ {
			sop := retry[cp][cr] // cp's leg toward cr
			rop := retry[cr][cp]
			var wire []byte
			for _, b := range sop.SendType.Repeat(sop.SendCount) {
				wire = append(wire, sop.SendBuf.Data[b.Offset:b.Offset+b.Len]...)
			}
			buf := append([]byte(nil), rop.RecvBuf.Data...)
			var pos int64
			for _, b := range rop.RecvType.Repeat(rop.RecvCount) {
				copy(buf[b.Offset:b.Offset+b.Len], wire[pos:pos+b.Len])
				pos += b.Len
			}
			expect[cr][cp] = buf
		}
	}

	flags := make([]uint64, w.Size())
	agreeErrs := make([]error, w.Size())
	runErr := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		var err error
		for err == nil && p.Now() < 400_000 {
			err = e.Alltoallw(p, r, ops[r.ID()])
		}
		if !errors.Is(err, mpi.ErrRankFailed) && !errors.Is(err, mpi.ErrCommRevoked) {
			t.Errorf("rank %d: expected typed failure, got %v", r.ID(), err)
			return
		}
		wc := w.WorldComm()
		var ok uint64
		if err == nil {
			ok = 1
		}
		flags[r.ID()], agreeErrs[r.ID()] = wc.Agree(p, r, ok)
		sub, serr := wc.Shrink(p, r)
		if serr != nil {
			t.Errorf("rank %d: shrink: %v", r.ID(), serr)
			return
		}
		if sub.Size() != nSurv || sub.CommRank(r.ID()) != world2comm[r.ID()] {
			t.Errorf("rank %d: shrunken comm size=%d commRank=%d, want %d/%d",
				r.ID(), sub.Size(), sub.CommRank(r.ID()), nSurv, world2comm[r.ID()])
			return
		}
		se := e.Sub(sub)
		if rerr := se.Alltoallw(p, r, retry[world2comm[r.ID()]]); rerr != nil {
			t.Errorf("rank %d: retry on shrunken comm: %v", r.ID(), rerr)
		}
	})
	if runErr != nil {
		t.Fatalf("world: %v", runErr)
	}
	for _, i := range comm2world {
		if flags[i] != 0 {
			t.Fatalf("rank %d: agreed flag %#x, want 0 (someone saw the failure)", i, flags[i])
		}
		var rf *mpi.RankFailedError
		if !errors.As(agreeErrs[i], &rf) || rf.Rank != deadRank {
			t.Fatalf("rank %d: agree error %v, want RankFailedError{Rank:%d}", i, agreeErrs[i], deadRank)
		}
	}
	for cr := 0; cr < nSurv; cr++ {
		for cp := 0; cp < nSurv; cp++ {
			if !bytes.Equal(retry[cr][cp].RecvBuf.Data, expect[cr][cp]) {
				t.Fatalf("comm rank %d recv-from-%d not byte-exact after shrink retry", cr, cp)
			}
		}
	}
	if n := w.LeakedRequests(); n != 0 {
		t.Fatalf("%d leaked requests", n)
	}
	if n := w.PendingFusedJobs(); n != 0 {
		t.Fatalf("%d fused jobs stranded", n)
	}
}

// TestCollectivesRankCrashReplay reruns representative cells and demands a
// bit-identical replay: final clock, the full fault-event sequence, and
// every rank's timeline cost sums.
func TestCollectivesRankCrashReplay(t *testing.T) {
	for _, cc := range chaosMatrix() {
		switch cc.name {
		case "alltoallw/pairwise", "allgatherv/bruck", "gatherv/hierarchical", "neighbor/indexed-fifo":
		default:
			continue
		}
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			a := runChaosCell(t, cc, 3)
			b := runChaosCell(t, cc, 3)
			if a.finalClock != b.finalClock {
				t.Fatalf("final clock differs: %d vs %d", a.finalClock, b.finalClock)
			}
			if len(a.faultEvs) != len(b.faultEvs) {
				t.Fatalf("fault event counts differ: %d vs %d", len(a.faultEvs), len(b.faultEvs))
			}
			for i := range a.faultEvs {
				if a.faultEvs[i] != b.faultEvs[i] {
					t.Fatalf("fault event %d differs:\n%s\n%s", i, a.faultEvs[i], b.faultEvs[i])
				}
			}
			for i := range a.tlSums {
				if a.tlSums[i] != b.tlSums[i] {
					t.Fatalf("rank %d timeline sums differ:\n%s\n%s", i, a.tlSums[i], b.tlSums[i])
				}
			}
		})
	}
}
