package coll_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// This file is the collectives half of the lazy-vs-exact differential
// oracle (the schemes half lives in internal/conformance). Every matrix
// cell below runs twice on identical 8-rank Lassen worlds — once
// byte-exact, once with LazyThreshold=1 so every buffer is lazy — and the
// two runs must agree on per-leg recv checksums, the final simulated
// clock, and total kernel launches. Fills use the position-addressable
// PRF stream so both modes see identical logical bytes by construction.

// lazyCollWorld mirrors collWorld but returns the env (for clock
// comparison) and flips every device to lazy-bytes when asked.
func lazyCollWorld(scheme string, lazy bool, mut func(*mpi.Config)) (*sim.Env, *mpi.World) {
	env := sim.NewEnv()
	c := cluster.MustBuild(env, cluster.Lassen())
	if lazy {
		for _, node := range c.Devices {
			for _, d := range node {
				d.LazyThreshold = 1
			}
		}
	}
	cfg := mpi.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	return env, mpi.NewWorld(c, cfg, schemes.Factory(scheme))
}

func kernelTotal(w *mpi.World) int64 {
	var n int64
	seen := make(map[*gpu.Device]bool)
	for i := 0; i < w.Size(); i++ {
		d := w.Rank(i).Dev
		if !seen[d] {
			seen[d] = true
			n += d.Stats.KernelLaunches
		}
	}
	return n
}

// cellResult is everything one run of a matrix cell must agree on with
// its counterpart in the other payload mode.
type cellResult struct {
	sums     []uint64 // per-leg recv checksums, fixed order
	clock    int64    // env.Now() after the world drains
	kernels  int64    // summed KernelLaunches across devices
	lazyRecv int      // recv buffers still lazy after the run
}

func diffCell(t *testing.T, label string, run func(t *testing.T, lazy bool) cellResult) {
	t.Helper()
	ex := run(t, false)
	lz := run(t, true)
	if ex.clock != lz.clock {
		t.Errorf("%s: final clock differs: exact %d vs lazy %d", label, ex.clock, lz.clock)
	}
	if ex.kernels != lz.kernels {
		t.Errorf("%s: kernel launches differ: exact %d vs lazy %d", label, ex.kernels, lz.kernels)
	}
	if len(ex.sums) != len(lz.sums) {
		t.Fatalf("%s: leg count differs: %d vs %d", label, len(ex.sums), len(lz.sums))
	}
	for i := range ex.sums {
		if ex.sums[i] != lz.sums[i] {
			t.Errorf("%s: leg %d checksum differs: exact %#x vs lazy %#x", label, i, ex.sums[i], lz.sums[i])
		}
	}
	if ex.lazyRecv != 0 {
		t.Errorf("%s: exact run produced %d lazy recv buffers", label, ex.lazyRecv)
	}
	if lz.lazyRecv == 0 {
		t.Errorf("%s: lazy run materialized every recv buffer — mode not engaged", label)
	}
}

// --- Alltoallw cells ---

func makeA2AOpsPRF(w *mpi.World, l *datatype.Layout) [][]coll.WOp {
	size := w.Size()
	ops := make([][]coll.WOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		ops[r] = make([]coll.WOp, size)
		for peer := 0; peer < size; peer++ {
			count := 1 + (r+peer)%3
			sb := dev.Alloc(fmt.Sprintf("ls-%d-%d", r, peer), int(l.ExtentBytes)*3)
			rb := dev.Alloc(fmt.Sprintf("lr-%d-%d", r, peer), int(l.ExtentBytes)*3)
			sb.FillStream(uint64(r*1000 + peer + 1))
			ops[r][peer] = coll.WOp{SendBuf: sb, SendType: l, SendCount: count, RecvBuf: rb, RecvType: l, RecvCount: count}
		}
	}
	return ops
}

func a2aCell(scheme string, alg coll.Algorithm, l *datatype.Layout, mut func(*mpi.Config)) func(t *testing.T, lazy bool) cellResult {
	return func(t *testing.T, lazy bool) cellResult {
		t.Helper()
		env, w := lazyCollWorld(scheme, lazy, mut)
		ops := makeA2AOpsPRF(w, l)
		e := coll.New(w, coll.Tuning{Alltoallw: alg})
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			if cerr := e.Alltoallw(p, r, ops[r.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", r.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatalf("%s/%s lazy=%v: %v", scheme, alg, lazy, err)
		}
		checkNoLeaks(t, w, fmt.Sprintf("%s/%s lazy=%v", scheme, alg, lazy))
		res := cellResult{clock: env.Now(), kernels: kernelTotal(w)}
		for r := range ops {
			for peer := range ops[r] {
				res.sums = append(res.sums, ops[r][peer].RecvBuf.Checksum())
				if ops[r][peer].RecvBuf.IsLazy() {
					res.lazyRecv++
				}
			}
		}
		return res
	}
}

// --- Allgatherv / Gatherv / Scatterv cells ---

func makeAGPRF(w *mpi.World, l *datatype.Layout) ([]coll.VOp, [][]coll.VOp) {
	size := w.Size()
	sends := make([]coll.VOp, size)
	recvs := make([][]coll.VOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		count := 1 + r%3
		sb := dev.Alloc(fmt.Sprintf("lag-s-%d", r), int(l.ExtentBytes)*3)
		sb.FillStream(uint64(777 + r))
		sends[r] = coll.VOp{Buf: sb, Type: l, Count: count}
		recvs[r] = make([]coll.VOp, size)
		for src := 0; src < size; src++ {
			rb := dev.Alloc(fmt.Sprintf("lag-r-%d-%d", r, src), int(l.ExtentBytes)*3)
			recvs[r][src] = coll.VOp{Buf: rb, Type: l, Count: 1 + src%3}
		}
	}
	return sends, recvs
}

func agCell(scheme string, alg coll.Algorithm, l *datatype.Layout) func(t *testing.T, lazy bool) cellResult {
	return func(t *testing.T, lazy bool) cellResult {
		t.Helper()
		env, w := lazyCollWorld(scheme, lazy, nil)
		sends, recvs := makeAGPRF(w, l)
		e := coll.New(w, coll.Tuning{Allgatherv: alg})
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			if cerr := e.Allgatherv(p, r, sends[r.ID()], recvs[r.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", r.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatalf("%s/%s lazy=%v: %v", scheme, alg, lazy, err)
		}
		checkNoLeaks(t, w, fmt.Sprintf("%s/%s lazy=%v", scheme, alg, lazy))
		res := cellResult{clock: env.Now(), kernels: kernelTotal(w)}
		for r := range recvs {
			for src := range recvs[r] {
				res.sums = append(res.sums, recvs[r][src].Buf.Checksum())
				if recvs[r][src].Buf.IsLazy() {
					res.lazyRecv++
				}
			}
		}
		return res
	}
}

func gathervCell(scheme string, alg coll.Algorithm, root int, l *datatype.Layout) func(t *testing.T, lazy bool) cellResult {
	return func(t *testing.T, lazy bool) cellResult {
		t.Helper()
		env, w := lazyCollWorld(scheme, lazy, nil)
		sends, recvs := makeAGPRF(w, l)
		e := coll.New(w, coll.Tuning{Gatherv: alg})
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			if cerr := e.Gatherv(p, r, root, sends[r.ID()], recvs[r.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", r.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatalf("%s/%s lazy=%v: %v", scheme, alg, lazy, err)
		}
		checkNoLeaks(t, w, fmt.Sprintf("%s/%s lazy=%v", scheme, alg, lazy))
		res := cellResult{clock: env.Now(), kernels: kernelTotal(w)}
		for src := 0; src < w.Size(); src++ {
			res.sums = append(res.sums, recvs[root][src].Buf.Checksum())
			if recvs[root][src].Buf.IsLazy() {
				res.lazyRecv++
			}
		}
		return res
	}
}

func scattervCell(scheme string, alg coll.Algorithm, root int, l *datatype.Layout) func(t *testing.T, lazy bool) cellResult {
	return func(t *testing.T, lazy bool) cellResult {
		t.Helper()
		env, w := lazyCollWorld(scheme, lazy, nil)
		size := w.Size()
		sends := make([][]coll.VOp, size)
		recvs := make([]coll.VOp, size)
		for r := 0; r < size; r++ {
			dev := w.Rank(r).Dev
			sends[r] = make([]coll.VOp, size)
			for dst := 0; dst < size; dst++ {
				sb := dev.Alloc(fmt.Sprintf("lsv-s-%d-%d", r, dst), int(l.ExtentBytes)*3)
				sb.FillStream(uint64(r*100 + dst + 1))
				sends[r][dst] = coll.VOp{Buf: sb, Type: l, Count: 1 + dst%3}
			}
			rb := dev.Alloc(fmt.Sprintf("lsv-r-%d", r), int(l.ExtentBytes)*3)
			recvs[r] = coll.VOp{Buf: rb, Type: l, Count: 1 + r%3}
		}
		e := coll.New(w, coll.Tuning{Scatterv: alg})
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			if cerr := e.Scatterv(p, r, root, sends[r.ID()], recvs[r.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", r.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatalf("%s/%s lazy=%v: %v", scheme, alg, lazy, err)
		}
		checkNoLeaks(t, w, fmt.Sprintf("%s/%s lazy=%v", scheme, alg, lazy))
		res := cellResult{clock: env.Now(), kernels: kernelTotal(w)}
		for r := 0; r < size; r++ {
			res.sums = append(res.sums, recvs[r].Buf.Checksum())
			if recvs[r].Buf.IsLazy() {
				res.lazyRecv++
			}
		}
		return res
	}
}

// --- NeighborAlltoallw cell ---

func neighborCell(scheme string, l *datatype.Layout) func(t *testing.T, lazy bool) cellResult {
	return func(t *testing.T, lazy bool) cellResult {
		t.Helper()
		env, w := lazyCollWorld(scheme, lazy, nil)
		size := w.Size()
		ops := make([][]mpi.NeighborOp, size)
		for r := 0; r < size; r++ {
			dev := w.Rank(r).Dev
			left := (r - 1 + size) % size
			right := (r + 1) % size
			mk := func(k, peer int) mpi.NeighborOp {
				sb := dev.Alloc(fmt.Sprintf("ln-s-%d-%d", r, k), int(l.ExtentBytes))
				rb := dev.Alloc(fmt.Sprintf("ln-r-%d-%d", r, k), int(l.ExtentBytes))
				sb.FillStream(uint64(r*10 + k + 1))
				return mpi.NeighborOp{Peer: peer, SendBuf: sb, SendType: l, RecvBuf: rb, RecvType: l, Count: 1}
			}
			ops[r] = []mpi.NeighborOp{mk(0, left), mk(1, right), mk(2, left), mk(3, right)}
		}
		e := coll.New(w, coll.Tuning{})
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			if cerr := e.NeighborAlltoallw(p, r, ops[r.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", r.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatalf("%s lazy=%v: %v", scheme, lazy, err)
		}
		checkNoLeaks(t, w, fmt.Sprintf("%s lazy=%v", scheme, lazy))
		res := cellResult{clock: env.Now(), kernels: kernelTotal(w)}
		for r := range ops {
			for k := range ops[r] {
				res.sums = append(res.sums, ops[r][k].RecvBuf.Checksum())
				if ops[r][k].RecvBuf.IsLazy() {
					res.lazyRecv++
				}
			}
		}
		return res
	}
}

// TestLazyCollectivesMatrix is the full collectives matrix under the
// lazy-vs-exact differential oracle at 8 ranks: every cell the byte-exact
// conformance suite covers — Alltoallw across algorithms / sparse / big
// (rendezvous) / IPC-off, Allgatherv across algorithms, rooted Gatherv
// and Scatterv, and NeighborAlltoallw — must produce identical checksums,
// clocks, and kernel counts in both payload modes.
func TestLazyCollectivesMatrix(t *testing.T) {
	dense := denseVec()
	sparse := sparseIdx()
	big := bigVec()
	noIPC := func(c *mpi.Config) { c.DisableIPC = true }
	cells := []struct {
		name string
		run  func(t *testing.T, lazy bool) cellResult
	}{
		{"Alltoallw/Linear/dense", a2aCell("Proposed-Tuned", coll.Linear, dense, nil)},
		{"Alltoallw/Pairwise/dense", a2aCell("Proposed-Tuned", coll.Pairwise, dense, nil)},
		{"Alltoallw/Hierarchical/dense", a2aCell("Proposed-Tuned", coll.Hierarchical, dense, nil)},
		{"Alltoallw/Hierarchical/sparse", a2aCell("Proposed-Tuned", coll.Hierarchical, sparse, nil)},
		{"Alltoallw/Auto/sparse", a2aCell("Proposed-Auto", coll.Auto, sparse, nil)},
		{"Alltoallw/Linear/big-rendezvous", a2aCell("Proposed-Tuned", coll.Linear, big, nil)},
		{"Alltoallw/Hierarchical/big-rendezvous", a2aCell("Proposed-Tuned", coll.Hierarchical, big, nil)},
		{"Alltoallw/Hierarchical/no-ipc", a2aCell("Proposed-Tuned", coll.Hierarchical, dense, noIPC)},
		{"Allgatherv/Ring/dense", agCell("Proposed-Tuned", coll.Ring, dense)},
		{"Allgatherv/Bruck/dense", agCell("Proposed-Tuned", coll.Bruck, dense)},
		{"Allgatherv/RecursiveDoubling/dense", agCell("Proposed-Tuned", coll.RecursiveDoubling, dense)},
		{"Allgatherv/Hierarchical/dense", agCell("Proposed-Tuned", coll.Hierarchical, dense)},
		{"Gatherv/Hierarchical/root5", gathervCell("Proposed-Tuned", coll.Hierarchical, 5, dense)},
		{"Scatterv/Hierarchical/root5", scattervCell("Proposed-Tuned", coll.Hierarchical, 5, dense)},
		{"NeighborAlltoallw/ring", neighborCell("Proposed-Tuned", dense)},
		{"Alltoallw/Hierarchical/baseline-scheme", a2aCell("GPU-Sync", coll.Hierarchical, dense, nil)},
	}
	if testing.Short() {
		cells = cells[:8]
	}
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			diffCell(t, c.name, c.run)
		})
	}
}
