package coll_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// This file is the collectives half of the pack-plans differential oracle
// (the schemes half lives in internal/conformance): every matrix cell runs
// on identical 8-rank Lassen worlds with compiled pack plans enabled and
// disabled (the legacy block-list path), in both exact and lazy payload
// modes, and the runs must agree on per-leg recv checksums, the final
// simulated clock, and total kernel launches. Plans change host execution
// only; any divergence is a plan bug.

func plansCollWorld(scheme string, lazy, noplans bool, mut func(*mpi.Config)) (*sim.Env, *mpi.World) {
	env := sim.NewEnv()
	c := cluster.MustBuild(env, cluster.Lassen())
	if lazy {
		for _, node := range c.Devices {
			for _, d := range node {
				d.LazyThreshold = 1
			}
		}
	}
	cfg := mpi.DefaultConfig()
	cfg.DisablePackPlans = noplans
	if mut != nil {
		mut(&cfg)
	}
	return env, mpi.NewWorld(c, cfg, schemes.Factory(scheme))
}

// planDiffCell runs one cell four ways ({exact,lazy} x {plans,legacy}) and
// asserts the plan arm matches the legacy arm within each payload mode.
func planDiffCell(t *testing.T, label string, run func(t *testing.T, lazy, noplans bool) cellResult) {
	t.Helper()
	for _, lazy := range []bool{false, true} {
		mode := map[bool]string{false: "exact", true: "lazy"}[lazy]
		on := run(t, lazy, false)
		off := run(t, lazy, true)
		if on.clock != off.clock {
			t.Errorf("%s/%s: final clock differs: plans %d vs legacy %d", label, mode, on.clock, off.clock)
		}
		if on.kernels != off.kernels {
			t.Errorf("%s/%s: kernel launches differ: plans %d vs legacy %d", label, mode, on.kernels, off.kernels)
		}
		if len(on.sums) != len(off.sums) {
			t.Fatalf("%s/%s: leg count differs: %d vs %d", label, mode, len(on.sums), len(off.sums))
		}
		for i := range on.sums {
			if on.sums[i] != off.sums[i] {
				t.Errorf("%s/%s: leg %d checksum differs: plans %#x vs legacy %#x", label, mode, i, on.sums[i], off.sums[i])
			}
		}
	}
}

func a2aPlanCell(scheme string, alg coll.Algorithm, l *datatype.Layout, mut func(*mpi.Config)) func(t *testing.T, lazy, noplans bool) cellResult {
	return func(t *testing.T, lazy, noplans bool) cellResult {
		t.Helper()
		env, w := plansCollWorld(scheme, lazy, noplans, mut)
		ops := makeA2AOpsPRF(w, l)
		e := coll.New(w, coll.Tuning{Alltoallw: alg})
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			if cerr := e.Alltoallw(p, r, ops[r.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", r.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatalf("%s/%s lazy=%v noplans=%v: %v", scheme, alg, lazy, noplans, err)
		}
		checkNoLeaks(t, w, fmt.Sprintf("%s/%s lazy=%v noplans=%v", scheme, alg, lazy, noplans))
		res := cellResult{clock: env.Now(), kernels: kernelTotal(w)}
		for r := range ops {
			for peer := range ops[r] {
				res.sums = append(res.sums, ops[r][peer].RecvBuf.Checksum())
			}
		}
		return res
	}
}

func agPlanCell(scheme string, alg coll.Algorithm, l *datatype.Layout) func(t *testing.T, lazy, noplans bool) cellResult {
	return func(t *testing.T, lazy, noplans bool) cellResult {
		t.Helper()
		env, w := plansCollWorld(scheme, lazy, noplans, nil)
		sends, recvs := makeAGPRF(w, l)
		e := coll.New(w, coll.Tuning{Allgatherv: alg})
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			if cerr := e.Allgatherv(p, r, sends[r.ID()], recvs[r.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", r.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatalf("%s/%s lazy=%v noplans=%v: %v", scheme, alg, lazy, noplans, err)
		}
		checkNoLeaks(t, w, fmt.Sprintf("%s/%s lazy=%v noplans=%v", scheme, alg, lazy, noplans))
		res := cellResult{clock: env.Now(), kernels: kernelTotal(w)}
		for r := range recvs {
			for src := range recvs[r] {
				res.sums = append(res.sums, recvs[r][src].Buf.Checksum())
			}
		}
		return res
	}
}

func gathervPlanCell(scheme string, alg coll.Algorithm, root int, l *datatype.Layout) func(t *testing.T, lazy, noplans bool) cellResult {
	return func(t *testing.T, lazy, noplans bool) cellResult {
		t.Helper()
		env, w := plansCollWorld(scheme, lazy, noplans, nil)
		sends, recvs := makeAGPRF(w, l)
		e := coll.New(w, coll.Tuning{Gatherv: alg})
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			if cerr := e.Gatherv(p, r, root, sends[r.ID()], recvs[r.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", r.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatalf("%s/%s lazy=%v noplans=%v: %v", scheme, alg, lazy, noplans, err)
		}
		checkNoLeaks(t, w, fmt.Sprintf("%s/%s lazy=%v noplans=%v", scheme, alg, lazy, noplans))
		res := cellResult{clock: env.Now(), kernels: kernelTotal(w)}
		for src := 0; src < w.Size(); src++ {
			res.sums = append(res.sums, recvs[root][src].Buf.Checksum())
		}
		return res
	}
}

func scattervPlanCell(scheme string, alg coll.Algorithm, root int, l *datatype.Layout) func(t *testing.T, lazy, noplans bool) cellResult {
	return func(t *testing.T, lazy, noplans bool) cellResult {
		t.Helper()
		env, w := plansCollWorld(scheme, lazy, noplans, nil)
		size := w.Size()
		sends := make([][]coll.VOp, size)
		recvs := make([]coll.VOp, size)
		for r := 0; r < size; r++ {
			dev := w.Rank(r).Dev
			sends[r] = make([]coll.VOp, size)
			for dst := 0; dst < size; dst++ {
				sb := dev.Alloc(fmt.Sprintf("psv-s-%d-%d", r, dst), int(l.ExtentBytes)*3)
				sb.FillStream(uint64(r*100 + dst + 1))
				sends[r][dst] = coll.VOp{Buf: sb, Type: l, Count: 1 + dst%3}
			}
			rb := dev.Alloc(fmt.Sprintf("psv-r-%d", r), int(l.ExtentBytes)*3)
			recvs[r] = coll.VOp{Buf: rb, Type: l, Count: 1 + r%3}
		}
		e := coll.New(w, coll.Tuning{Scatterv: alg})
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			if cerr := e.Scatterv(p, r, root, sends[r.ID()], recvs[r.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", r.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatalf("%s/%s lazy=%v noplans=%v: %v", scheme, alg, lazy, noplans, err)
		}
		checkNoLeaks(t, w, fmt.Sprintf("%s/%s lazy=%v noplans=%v", scheme, alg, lazy, noplans))
		res := cellResult{clock: env.Now(), kernels: kernelTotal(w)}
		for r := 0; r < size; r++ {
			res.sums = append(res.sums, recvs[r].Buf.Checksum())
		}
		return res
	}
}

func neighborPlanCell(scheme string, l *datatype.Layout) func(t *testing.T, lazy, noplans bool) cellResult {
	return func(t *testing.T, lazy, noplans bool) cellResult {
		t.Helper()
		env, w := plansCollWorld(scheme, lazy, noplans, nil)
		size := w.Size()
		ops := make([][]mpi.NeighborOp, size)
		for r := 0; r < size; r++ {
			dev := w.Rank(r).Dev
			left := (r - 1 + size) % size
			right := (r + 1) % size
			mk := func(k, peer int) mpi.NeighborOp {
				sb := dev.Alloc(fmt.Sprintf("pn-s-%d-%d", r, k), int(l.ExtentBytes))
				rb := dev.Alloc(fmt.Sprintf("pn-r-%d-%d", r, k), int(l.ExtentBytes))
				sb.FillStream(uint64(r*10 + k + 1))
				return mpi.NeighborOp{Peer: peer, SendBuf: sb, SendType: l, RecvBuf: rb, RecvType: l, Count: 1}
			}
			ops[r] = []mpi.NeighborOp{mk(0, left), mk(1, right), mk(2, left), mk(3, right)}
		}
		e := coll.New(w, coll.Tuning{})
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			if cerr := e.NeighborAlltoallw(p, r, ops[r.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", r.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatalf("%s lazy=%v noplans=%v: %v", scheme, lazy, noplans, err)
		}
		checkNoLeaks(t, w, fmt.Sprintf("%s lazy=%v noplans=%v", scheme, lazy, noplans))
		res := cellResult{clock: env.Now(), kernels: kernelTotal(w)}
		for r := range ops {
			for k := range ops[r] {
				res.sums = append(res.sums, ops[r][k].RecvBuf.Checksum())
			}
		}
		return res
	}
}

// TestPlanCollectivesMatrix is the collectives matrix under the
// plans-on/plans-off differential oracle at 8 ranks: Alltoallw across
// algorithms and layout families, Allgatherv across algorithms, rooted
// Gatherv and Scatterv, and NeighborAlltoallw — identical checksums,
// clocks, and kernel counts with compiled pack plans vs. the legacy
// block-list path, in exact and lazy payload modes.
func TestPlanCollectivesMatrix(t *testing.T) {
	dense := denseVec()
	sparse := sparseIdx()
	big := bigVec()
	noIPC := func(c *mpi.Config) { c.DisableIPC = true }
	cells := []struct {
		name string
		run  func(t *testing.T, lazy, noplans bool) cellResult
	}{
		{"Alltoallw/Linear/dense", a2aPlanCell("Proposed-Tuned", coll.Linear, dense, nil)},
		{"Alltoallw/Pairwise/dense", a2aPlanCell("Proposed-Tuned", coll.Pairwise, dense, nil)},
		{"Alltoallw/Hierarchical/dense", a2aPlanCell("Proposed-Tuned", coll.Hierarchical, dense, nil)},
		{"Alltoallw/Hierarchical/sparse", a2aPlanCell("Proposed-Tuned", coll.Hierarchical, sparse, nil)},
		{"Alltoallw/Hierarchical/big-rendezvous", a2aPlanCell("Proposed-Tuned", coll.Hierarchical, big, nil)},
		{"Alltoallw/Hierarchical/no-ipc", a2aPlanCell("Proposed-Tuned", coll.Hierarchical, dense, noIPC)},
		{"Allgatherv/Ring/dense", agPlanCell("Proposed-Tuned", coll.Ring, dense)},
		{"Allgatherv/Bruck/dense", agPlanCell("Proposed-Tuned", coll.Bruck, dense)},
		{"Allgatherv/Hierarchical/dense", agPlanCell("Proposed-Tuned", coll.Hierarchical, dense)},
		{"Gatherv/Hierarchical/root5", gathervPlanCell("Proposed-Tuned", coll.Hierarchical, 5, dense)},
		{"Scatterv/Hierarchical/root5", scattervPlanCell("Proposed-Tuned", coll.Hierarchical, 5, dense)},
		{"NeighborAlltoallw/ring", neighborPlanCell("Proposed-Tuned", dense)},
		{"Alltoallw/Hierarchical/baseline-scheme", a2aPlanCell("GPU-Sync", coll.Hierarchical, dense, nil)},
	}
	if testing.Short() {
		cells = cells[:6]
	}
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			planDiffCell(t, c.name, c.run)
		})
	}
}
