package coll_test

import (
	"fmt"
	"testing"

	"repro/internal/coll"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/rma"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// TestOneSidedConformance is the byte-exact matrix for the put-based
// algorithm family: one-sided ring and Bruck Allgatherv/Alltoallw must
// match the sequential pt2pt reference on every scheme (schemes without
// batch hooks exercise the unfused pack-put arm for free).
func TestOneSidedConformance(t *testing.T) {
	l := denseVec()
	for _, alg := range []coll.Algorithm{coll.OneSidedRing, coll.OneSidedBruck} {
		for _, s := range schemes.Names() {
			alg, s := alg, s
			t.Run("allgatherv/"+alg.String()+"/"+s, func(t *testing.T) {
				runAllgatherv(t, s, alg, l)
			})
			t.Run("alltoallw/"+alg.String()+"/"+s, func(t *testing.T) {
				runAlltoallw(t, s, alg, l, nil)
			})
		}
	}
}

// TestOneSidedRendezvousSized pushes the one-sided family through
// payloads far above the eager limit — the regime where the two-sided
// path pays the rendezvous round-trip that puts avoid entirely.
func TestOneSidedRendezvousSized(t *testing.T) {
	l := bigVec()
	for _, alg := range []coll.Algorithm{coll.OneSidedRing, coll.OneSidedBruck} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			runAllgatherv(t, "Proposed-Tuned", alg, l)
			runAlltoallw(t, "Proposed-Tuned", alg, l, nil)
		})
	}
}

// TestOneSidedUnfused pins the unfused arm explicitly: with the fusion
// window disabled, every PackPut takes the launch → stream-sync →
// doorbell path and the bytes must still be exact.
func TestOneSidedUnfused(t *testing.T) {
	w := collWorld("Proposed-Tuned", nil)
	sends, recvs := makeAG(w, denseVec())
	e := coll.New(w, coll.Tuning{Allgatherv: coll.OneSidedRing, DisableFusionWindow: true})
	f := rma.New(w)
	e.UseRMA(f)
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Allgatherv(p, r, sends[r.ID()], recvs[r.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", r.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, w, "unfused")
	if f.PendingOps() != 0 {
		t.Fatalf("%d one-sided ops leaked", f.PendingOps())
	}
	if st := f.TotalStats(); st.PackPuts == 0 {
		t.Fatal("one-sided allgatherv issued no pack-puts")
	}
	ref := collWorld("GPU-Sync", nil)
	rSends, rRecvs := makeAG(ref, denseVec())
	refAllgatherv(t, ref, rSends, rRecvs)
	for r := range recvs {
		for src := range recvs[r] {
			if got, want := recvs[r][src].Buf.Checksum(), rRecvs[r][src].Buf.Checksum(); got != want {
				t.Fatalf("rank %d contribution-of-%d differs from reference", r, src)
			}
		}
	}
}

// TestOneSidedLazyMatrix runs the one-sided cells under the lazy-vs-exact
// differential oracle: identical checksums, final clock, and kernel
// launches in both payload modes.
func TestOneSidedLazyMatrix(t *testing.T) {
	dense := denseVec()
	big := bigVec()
	cells := []struct {
		name string
		run  func(t *testing.T, lazy bool) cellResult
	}{
		{"Allgatherv/OneSidedRing/dense", agCell("Proposed-Tuned", coll.OneSidedRing, dense)},
		{"Allgatherv/OneSidedBruck/dense", agCell("Proposed-Tuned", coll.OneSidedBruck, dense)},
		{"Allgatherv/OneSidedRing/big-rendezvous", agCell("Proposed-Tuned", coll.OneSidedRing, big)},
		{"Alltoallw/OneSidedRing/dense", a2aCell("Proposed-Tuned", coll.OneSidedRing, dense, nil)},
		{"Alltoallw/OneSidedBruck/dense", a2aCell("Proposed-Tuned", coll.OneSidedBruck, dense, nil)},
	}
	if testing.Short() {
		cells = cells[:2]
	}
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			diffCell(t, c.name, c.run)
		})
	}
}

// TestOneSidedReplay pins bit-identical replay: the same one-sided cell
// run twice produces the same clock, kernel count, and checksums.
func TestOneSidedReplay(t *testing.T) {
	for _, alg := range []coll.Algorithm{coll.OneSidedRing, coll.OneSidedBruck} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			run := agCell("Proposed-Tuned", alg, denseVec())
			a := run(t, false)
			b := run(t, false)
			if a.clock != b.clock || a.kernels != b.kernels {
				t.Fatalf("replay diverged: clock %d vs %d, kernels %d vs %d", a.clock, b.clock, a.kernels, b.kernels)
			}
			for i := range a.sums {
				if a.sums[i] != b.sums[i] {
					t.Fatalf("replay diverged at leg %d: %#x vs %#x", i, a.sums[i], b.sums[i])
				}
			}
		})
	}
}

// oneSidedChaosCell runs an allgatherv over the flaky one-sided fabric
// and returns the clock, injected-event count, and recv checksums.
func oneSidedChaosCell(t *testing.T, alg coll.Algorithm, lazy bool, seed uint64) (int64, int, []uint64) {
	t.Helper()
	plan, err := fault.Preset("rma-flaky", seed)
	if err != nil {
		t.Fatal(err)
	}
	env, w := lazyCollWorld("Proposed-Tuned", lazy, func(c *mpi.Config) { c.Faults = plan })
	sends, recvs := makeAGPRF(w, denseVec())
	e := coll.New(w, coll.Tuning{Allgatherv: alg})
	f := rma.New(w)
	e.UseRMA(f)
	err = w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Allgatherv(p, r, sends[r.ID()], recvs[r.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", r.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, w, fmt.Sprintf("chaos/%s/lazy=%v", alg, lazy))
	if f.PendingOps() != 0 {
		t.Fatalf("%d one-sided ops leaked under chaos", f.PendingOps())
	}
	var sums []uint64
	for r := range recvs {
		for src := range recvs[r] {
			sums = append(sums, recvs[r][src].Buf.Checksum())
		}
	}
	return env.Now(), len(w.FaultEvents()), sums
}

// TestOneSidedChaos: under the rma-flaky preset (drops, CRC rejects,
// delays, signal loss on the put path) the one-sided collectives must
// deliver byte-exact results in exact and lazy modes, with faults
// actually injected.
func TestOneSidedChaos(t *testing.T) {
	// Fault-free exact run is the byte oracle.
	_, wantW := lazyCollWorld("GPU-Sync", false, nil)
	wSends, wRecvs := makeAGPRF(wantW, denseVec())
	refAllgatherv(t, wantW, wSends, wRecvs)
	var want []uint64
	for r := range wRecvs {
		for src := range wRecvs[r] {
			want = append(want, wRecvs[r][src].Buf.Checksum())
		}
	}
	for _, alg := range []coll.Algorithm{coll.OneSidedRing, coll.OneSidedBruck} {
		for _, lazy := range []bool{false, true} {
			alg, lazy := alg, lazy
			t.Run(fmt.Sprintf("%s/lazy=%v", alg, lazy), func(t *testing.T) {
				_, events, sums := oneSidedChaosCell(t, alg, lazy, 17)
				if events == 0 {
					t.Fatal("rma-flaky injected no faults")
				}
				for i := range sums {
					if sums[i] != want[i] {
						t.Fatalf("leg %d checksum %#x differs from fault-free reference %#x", i, sums[i], want[i])
					}
				}
			})
		}
	}
}

// TestOneSidedChaosReplay: same seed, same run — clock, event count, and
// bytes all reproduce under active injection.
func TestOneSidedChaosReplay(t *testing.T) {
	c1, e1, s1 := oneSidedChaosCell(t, coll.OneSidedRing, false, 5)
	c2, e2, s2 := oneSidedChaosCell(t, coll.OneSidedRing, false, 5)
	if c1 != c2 || e1 != e2 {
		t.Fatalf("replay diverged: clock %d vs %d, events %d vs %d", c1, c2, e1, e2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("replay diverged at leg %d", i)
		}
	}
}

// TestOneSidedNames pins the CLI surface: the new algorithm names parse
// and round-trip.
func TestOneSidedNames(t *testing.T) {
	for name, want := range map[string]coll.Algorithm{
		"onesided-ring":  coll.OneSidedRing,
		"onesided-bruck": coll.OneSidedBruck,
	} {
		got, err := coll.ParseAlgorithm(name)
		if err != nil || got != want {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v; want %v", name, got, err, want)
		}
		if got.String() != name {
			t.Fatalf("%v.String() = %q, want %q", want, got.String(), name)
		}
	}
}
