package coll_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/coll"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/rma"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// The one-sided half of the rank-crash chaos matrix: the put-based
// collectives driven past a deterministic rank death, in exact and lazy
// payload modes. The contract extends the two-sided one with the fabric's
// own oracles:
//
//   1. every survivor unwinds with a typed error (*mpi.RankFailedError
//      from a signal wait or verb, or mpi.ErrCommRevoked once the
//      auto-revocation poisons the fabric epoch) — no stall, no false
//      success,
//   2. nothing leaks: no registered requests, no stranded fused jobs, and
//      zero pending one-sided deposits (reaped ops included),
//   3. the same seed replays bit-identically (final clock, fault-event
//      sequence, per-rank timeline sums).

// osChaosCase is one (collective, one-sided algorithm) matrix cell.
type osChaosCase struct {
	name   string
	tuning coll.Tuning
	run    func(e *coll.Engine, r *mpi.Rank, p *sim.Proc, ag []coll.VOp, agr [][]coll.VOp, a2a [][]coll.WOp) error
}

func osChaosMatrix() []osChaosCase {
	var cases []osChaosCase
	for _, alg := range []coll.Algorithm{coll.OneSidedRing, coll.OneSidedBruck} {
		alg := alg
		cases = append(cases, osChaosCase{
			name:   "allgatherv/" + alg.String(),
			tuning: coll.Tuning{Allgatherv: alg},
			run: func(e *coll.Engine, r *mpi.Rank, p *sim.Proc, ag []coll.VOp, agr [][]coll.VOp, a2a [][]coll.WOp) error {
				return e.Allgatherv(p, r, ag[r.ID()], agr[r.ID()])
			},
		})
		cases = append(cases, osChaosCase{
			name:   "alltoallw/" + alg.String(),
			tuning: coll.Tuning{Alltoallw: alg},
			run: func(e *coll.Engine, r *mpi.Rank, p *sim.Proc, ag []coll.VOp, agr [][]coll.VOp, a2a [][]coll.WOp) error {
				return e.Alltoallw(p, r, a2a[r.ID()])
			},
		})
	}
	return cases
}

// osChaosObservation is everything one seeded one-sided run exposes.
type osChaosObservation struct {
	finalClock int64
	crashed    []int
	rankErrs   []error
	faultEvs   []string
	tlSums     []string
	leaked     int
	fusedLeft  int
	pendingOps int
	reaped     int64
}

func runOneSidedChaosCell(t *testing.T, cc osChaosCase, lazy bool, seed uint64) *osChaosObservation {
	t.Helper()
	plan, err := fault.Preset("rank-crash", seed)
	if err != nil {
		t.Fatal(err)
	}
	env, w := lazyCollWorld("Proposed-Tuned", lazy, func(c *mpi.Config) {
		c.Faults = plan
		c.Timeline = &timeline.Options{}
	})
	ag, agr := makeAGPRF(w, denseVec())
	a2a := makeA2AOpsPRF(w, denseVec())
	e := coll.New(w, cc.tuning)
	f := rma.New(w)
	e.UseRMA(f)
	obs := &osChaosObservation{rankErrs: make([]error, w.Size())}
	const horizon = 400_000 // crash ≤45µs + detection ≤~175µs, plus slack
	runErr := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		for obs.rankErrs[r.ID()] == nil && p.Now() < horizon {
			obs.rankErrs[r.ID()] = cc.run(e, r, p, ag, agr, a2a)
		}
	})
	if runErr != nil {
		t.Fatalf("%s lazy=%v seed %d: world did not terminate cleanly: %v", cc.name, lazy, seed, runErr)
	}
	obs.finalClock = env.Now()
	obs.crashed = w.CrashedRanks()
	for _, ev := range w.FaultEvents() {
		obs.faultEvs = append(obs.faultEvs, fmt.Sprintf("%d %s %s %s", ev.At, ev.Site, ev.Kind, ev.Detail))
	}
	for i := 0; i < w.Size(); i++ {
		obs.tlSums = append(obs.tlSums, w.Rank(i).Timeline().Sums().String())
	}
	obs.leaked = w.LeakedRequests()
	obs.fusedLeft = w.PendingFusedJobs()
	obs.pendingOps = f.PendingOps()
	obs.reaped = f.TotalStats().Reaped
	return obs
}

func assertOneSidedChaosContract(t *testing.T, cc osChaosCase, lazy bool, seed uint64, obs *osChaosObservation) {
	t.Helper()
	label := fmt.Sprintf("%s lazy=%v seed %d", cc.name, lazy, seed)
	if len(obs.crashed) != 1 {
		t.Fatalf("%s: crashed ranks %v, want exactly one", label, obs.crashed)
	}
	dead := obs.crashed[0]
	for i, rerr := range obs.rankErrs {
		if i == dead {
			continue // killed mid-body; its slot is whatever it last wrote
		}
		if rerr == nil {
			t.Fatalf("%s: survivor %d returned success across the failure window", label, i)
		}
		if !errors.Is(rerr, mpi.ErrRankFailed) && !errors.Is(rerr, mpi.ErrCommRevoked) {
			t.Fatalf("%s: survivor %d got untyped error: %v", label, i, rerr)
		}
	}
	if obs.leaked != 0 {
		t.Fatalf("%s: %d leaked requests", label, obs.leaked)
	}
	if obs.fusedLeft != 0 {
		t.Fatalf("%s: %d fused jobs stranded", label, obs.fusedLeft)
	}
	if obs.pendingOps != 0 {
		t.Fatalf("%s: %d one-sided deposits leaked", label, obs.pendingOps)
	}
}

// TestOneSidedRankCrashMatrix: rank-crash × {onesided-ring, onesided-bruck}
// × {exact, lazy}, over both put-based collectives, several seeds each.
func TestOneSidedRankCrashMatrix(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, cc := range osChaosMatrix() {
		for _, lazy := range []bool{false, true} {
			cc, lazy := cc, lazy
			t.Run(fmt.Sprintf("%s/lazy=%v", cc.name, lazy), func(t *testing.T) {
				for _, seed := range seeds {
					assertOneSidedChaosContract(t, cc, lazy, seed,
						runOneSidedChaosCell(t, cc, lazy, seed))
				}
			})
		}
	}
}

// TestOneSidedRankCrashReplay reruns representative cells and demands a
// bit-identical replay: final clock, the full fault-event sequence
// (including the fabric's reap events), and every rank's timeline sums.
func TestOneSidedRankCrashReplay(t *testing.T) {
	for _, cc := range osChaosMatrix() {
		switch cc.name {
		case "allgatherv/onesided-ring", "alltoallw/onesided-bruck":
		default:
			continue
		}
		cc := cc
		for _, lazy := range []bool{false, true} {
			lazy := lazy
			t.Run(fmt.Sprintf("%s/lazy=%v", cc.name, lazy), func(t *testing.T) {
				a := runOneSidedChaosCell(t, cc, lazy, 3)
				b := runOneSidedChaosCell(t, cc, lazy, 3)
				if a.finalClock != b.finalClock {
					t.Fatalf("final clock differs: %d vs %d", a.finalClock, b.finalClock)
				}
				if len(a.faultEvs) != len(b.faultEvs) {
					t.Fatalf("fault event counts differ: %d vs %d", len(a.faultEvs), len(b.faultEvs))
				}
				for i := range a.faultEvs {
					if a.faultEvs[i] != b.faultEvs[i] {
						t.Fatalf("fault event %d differs:\n%s\n%s", i, a.faultEvs[i], b.faultEvs[i])
					}
				}
				for i := range a.tlSums {
					if a.tlSums[i] != b.tlSums[i] {
						t.Fatalf("rank %d timeline sums differ:\n%s\n%s", i, a.tlSums[i], b.tlSums[i])
					}
				}
				if a.reaped != b.reaped {
					t.Fatalf("reap counts differ: %d vs %d", a.reaped, b.reaped)
				}
			})
		}
	}
}

// oneSidedShrinkRetry runs the full recovery arc for one one-sided
// algorithm and payload mode: a rank dies mid-collective, every survivor
// observes a typed failure, agrees, shrinks, and retries BOTH put-based
// collectives on the shrunken communicator through the reseated fabric —
// two successive Alltoallw calls (so the negotiated window's parity
// double-buffering is exercised post-shrink) and one Allgatherv. Returns
// the survivors' final recv checksums in a fixed order for the lazy-vs-
// exact differential comparison; in exact mode the Alltoallw result is
// additionally verified byte-for-byte against a sequential model.
func oneSidedShrinkRetry(t *testing.T, alg coll.Algorithm, lazy bool) []uint64 {
	t.Helper()
	const deadRank = 1
	plan := &fault.Plan{
		Seed: 11,
		Proc: fault.ProcPlan{Crashes: []fault.Crash{{Rank: deadRank, AtNs: 20_000}}},
	}
	_, w := lazyCollWorld("Proposed-Tuned", lazy, func(c *mpi.Config) { c.Faults = plan })
	l := denseVec()
	ops := makeA2AOpsPRF(w, l)
	e := coll.New(w, coll.Tuning{Alltoallw: alg, Allgatherv: alg})
	f := rma.New(w)
	e.UseRMA(f)

	// Survivor-space retry state: comm rank == dense re-rank over
	// world \ {deadRank}, guaranteed by the deterministic plan.
	size := w.Size()
	nSurv := size - 1
	world2comm := make([]int, size)
	comm2world := make([]int, 0, nSurv)
	for i, cr := 0, 0; i < size; i++ {
		if i == deadRank {
			world2comm[i] = -1
			continue
		}
		world2comm[i] = cr
		comm2world = append(comm2world, i)
		cr++
	}
	retry := make([][]coll.WOp, nSurv)
	agSends := make([]coll.VOp, nSurv)
	agRecvs := make([][]coll.VOp, nSurv)
	for cr := 0; cr < nSurv; cr++ {
		dev := w.Rank(comm2world[cr]).Dev
		retry[cr] = make([]coll.WOp, nSurv)
		for cp := 0; cp < nSurv; cp++ {
			count := 1 + (cr+cp)%3
			sb := dev.Alloc(fmt.Sprintf("os-rt-s-%d-%d", cr, cp), int(l.ExtentBytes)*3)
			rb := dev.Alloc(fmt.Sprintf("os-rt-r-%d-%d", cr, cp), int(l.ExtentBytes)*3)
			sb.FillStream(uint64(5000 + cr*100 + cp))
			rb.FillStream(uint64(9000 + cr*100 + cp)) // junk: untouched bytes stay visible
			retry[cr][cp] = coll.WOp{SendBuf: sb, SendType: l, SendCount: count, RecvBuf: rb, RecvType: l, RecvCount: count}
		}
		sb := dev.Alloc(fmt.Sprintf("os-rt-ag-s-%d", cr), int(l.ExtentBytes)*3)
		sb.FillStream(uint64(3000 + cr))
		agSends[cr] = coll.VOp{Buf: sb, Type: l, Count: 1 + cr%3}
		agRecvs[cr] = make([]coll.VOp, nSurv)
		for cp := 0; cp < nSurv; cp++ {
			rb := dev.Alloc(fmt.Sprintf("os-rt-ag-r-%d-%d", cr, cp), int(l.ExtentBytes)*3)
			agRecvs[cr][cp] = coll.VOp{Buf: rb, Type: l, Count: 1 + cp%3}
		}
	}

	runErr := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		var err error
		for err == nil && p.Now() < 400_000 {
			err = e.Alltoallw(p, r, ops[r.ID()])
		}
		if r.ID() == deadRank {
			return
		}
		if !errors.Is(err, mpi.ErrRankFailed) && !errors.Is(err, mpi.ErrCommRevoked) {
			t.Errorf("rank %d: expected typed failure, got %v", r.ID(), err)
			return
		}
		wc := w.WorldComm()
		if _, aerr := wc.Agree(p, r, 0); aerr != nil {
			var rf *mpi.RankFailedError
			if !errors.As(aerr, &rf) || rf.Rank != deadRank {
				t.Errorf("rank %d: agree error %v, want RankFailedError{Rank:%d}", r.ID(), aerr, deadRank)
				return
			}
		}
		sub, serr := wc.Shrink(p, r)
		if serr != nil {
			t.Errorf("rank %d: shrink: %v", r.ID(), serr)
			return
		}
		cr := world2comm[r.ID()]
		if sub.Size() != nSurv || sub.CommRank(r.ID()) != cr {
			t.Errorf("rank %d: shrunken comm size=%d commRank=%d, want %d/%d",
				r.ID(), sub.Size(), sub.CommRank(r.ID()), nSurv, cr)
			return
		}
		se := e.Sub(sub)
		// Two successive Alltoallw calls: the second refills the sends so
		// the parity-alternating in-regions must both carry correct bytes.
		if rerr := se.Alltoallw(p, r, retry[cr]); rerr != nil {
			t.Errorf("rank %d: alltoallw retry 1: %v", r.ID(), rerr)
			return
		}
		for cp := 0; cp < nSurv; cp++ {
			retry[cr][cp].SendBuf.FillStream(uint64(7000 + cr*100 + cp))
		}
		if rerr := se.Alltoallw(p, r, retry[cr]); rerr != nil {
			t.Errorf("rank %d: alltoallw retry 2: %v", r.ID(), rerr)
			return
		}
		if rerr := se.Allgatherv(p, r, agSends[cr], agRecvs[cr]); rerr != nil {
			t.Errorf("rank %d: allgatherv retry: %v", r.ID(), rerr)
		}
	})
	if runErr != nil {
		t.Fatalf("alg=%s lazy=%v: world: %v", alg, lazy, runErr)
	}
	checkNoLeaks(t, w, fmt.Sprintf("os-shrink-retry/%s/lazy=%v", alg, lazy))
	if n := w.PendingFusedJobs(); n != 0 {
		t.Fatalf("%d fused jobs stranded", n)
	}
	if n := f.PendingOps(); n != 0 {
		t.Fatalf("%d one-sided deposits leaked", n)
	}
	if f.Epoch() != 1 || f.Size() != nSurv {
		t.Fatalf("fabric epoch=%d size=%d after shrink retry, want 1/%d", f.Epoch(), f.Size(), nSurv)
	}

	if !lazy {
		// Sequential model of the SECOND Alltoallw call (the sends' final
		// fill): gather the sender's blocks into a wire stream, scatter it
		// through the receiver layout.
		for cr := 0; cr < nSurv; cr++ {
			for cp := 0; cp < nSurv; cp++ {
				sop := retry[cp][cr] // cp's leg toward cr
				rop := retry[cr][cp]
				var wire []byte
				for _, b := range sop.SendType.Repeat(sop.SendCount) {
					wire = append(wire, sop.SendBuf.Data[b.Offset:b.Offset+b.Len]...)
				}
				var pos int64
				for _, b := range rop.RecvType.Repeat(rop.RecvCount) {
					if !bytes.Equal(rop.RecvBuf.Data[b.Offset:b.Offset+b.Len], wire[pos:pos+b.Len]) {
						t.Fatalf("alg=%s: comm rank %d recv-from-%d not byte-exact after shrink retry", alg, cr, cp)
					}
					pos += b.Len
				}
			}
		}
		// Allgatherv model: every survivor holds every sender's block.
		for cr := 0; cr < nSurv; cr++ {
			for cp := 0; cp < nSurv; cp++ {
				sop := agSends[cp]
				rop := agRecvs[cr][cp]
				var wire []byte
				for _, b := range sop.Type.Repeat(sop.Count) {
					wire = append(wire, sop.Buf.Data[b.Offset:b.Offset+b.Len]...)
				}
				var pos int64
				for _, b := range rop.Type.Repeat(rop.Count) {
					if !bytes.Equal(rop.Buf.Data[b.Offset:b.Offset+b.Len], wire[pos:pos+b.Len]) {
						t.Fatalf("alg=%s: comm rank %d allgatherv-from-%d not byte-exact after shrink retry", alg, cr, cp)
					}
					pos += b.Len
				}
			}
		}
	}

	var sums []uint64
	for cr := 0; cr < nSurv; cr++ {
		for cp := 0; cp < nSurv; cp++ {
			sums = append(sums, retry[cr][cp].RecvBuf.Checksum())
			sums = append(sums, agRecvs[cr][cp].Buf.Checksum())
		}
	}
	return sums
}

// TestOneSidedShrinkRetryByteExact is the one-sided recovery acceptance
// run for both algorithms: exact mode is verified against the sequential
// byte model, and the lazy run must agree with the exact run checksum-
// for-checksum (the lazy-vs-exact differential oracle over the whole
// crash → shrink → reseat → retry arc).
func TestOneSidedShrinkRetryByteExact(t *testing.T) {
	for _, alg := range []coll.Algorithm{coll.OneSidedRing, coll.OneSidedBruck} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			ex := oneSidedShrinkRetry(t, alg, false)
			lz := oneSidedShrinkRetry(t, alg, true)
			if len(ex) != len(lz) {
				t.Fatalf("leg counts differ: %d vs %d", len(ex), len(lz))
			}
			for i := range ex {
				if ex[i] != lz[i] {
					t.Fatalf("leg %d: exact %#x vs lazy %#x", i, ex[i], lz[i])
				}
			}
		})
	}
}
