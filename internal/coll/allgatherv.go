package coll

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/sim"
)

// VOp is one buffer slot of a v-collective: a buffer, a layout, and an
// element count. Displacements are folded into the layout (byte-based,
// via datatype.Hindexed).
type VOp struct {
	Buf   *gpu.Buffer
	Type  *datatype.Layout
	Count int
}

func (op VOp) bytes() int64 {
	if op.Type == nil {
		return 0
	}
	return op.Type.SizeBytes * int64(op.Count)
}

// Allgatherv gathers every rank's contribution to every rank: send is this
// rank's contribution, recvs[i] is where rank i's contribution lands in
// this rank's receive space (recvs[self] included). Every rank must pass
// size-consistent arguments (rank i's send byte count == everyone's
// recvs[i] byte count): like MPI_Allgatherv's recvcounts vector, the full
// recvs slice is significant on every rank, which is what lets the
// hierarchical variant plan without a size exchange.
func (e *Engine) Allgatherv(p *sim.Proc, r *mpi.Rank, send VOp, recvs []VOp) error {
	if len(recvs) != e.size() {
		return fmt.Errorf("coll: Allgatherv: %d recv slots for %d ranks", len(recvs), e.size())
	}
	alg := e.tuning.Allgatherv
	if err := validAlg("allgatherv", alg, Linear, Ring, Bruck, RecursiveDoubling, Hierarchical, OneSidedRing, OneSidedBruck); err != nil {
		return err
	}
	if alg == Auto {
		alg = e.pickAllgatherv(recvs)
	}
	alg = e.flatten(alg)
	if alg == RecursiveDoubling && !isPow2(e.size()) {
		return fmt.Errorf("coll: allgatherv recursive-doubling requires a power-of-two world, have %d ranks", e.size())
	}
	c := e.begin(r, p, 2*len(recvs))
	var err error
	switch alg {
	case Linear:
		err = c.allgathervLinear(send, recvs)
	case Ring:
		err = c.allgathervRing(send, recvs)
	case Bruck:
		err = c.allgathervBruck(send, recvs)
	case RecursiveDoubling:
		err = c.allgathervRD(send, recvs)
	case Hierarchical:
		err = c.allgathervHier(send, recvs)
	case OneSidedRing, OneSidedBruck:
		err = c.allgathervOneSided(send, recvs, alg == OneSidedBruck)
	}
	return c.finish("allgatherv", alg, err)
}

func (e *Engine) pickAllgatherv(recvs []VOp) Algorithm {
	var maxLeg int64
	for _, op := range recvs {
		if b := op.bytes(); b > maxLeg {
			maxLeg = b
		}
	}
	if maxLeg <= e.tuning.SmallMsgBytes {
		return Bruck
	}
	if e.topoHierarchical() {
		return Hierarchical
	}
	if isPow2(e.size()) {
		return RecursiveDoubling
	}
	return Ring
}

// selfCopy lands this rank's own contribution via the loopback path, as
// its own fused mini-phase (ring/Bruck/RD forward out of recvs[self]).
func (c *call) selfCopy(send VOp, recvs []VOp) error {
	id := c.rank()
	return c.exchangePhase(
		[]leg{{peer: id, tag: c.tag(tagData), buf: recvs[id].Buf, l: recvs[id].Type, count: recvs[id].Count}},
		[]leg{{peer: id, tag: c.tag(tagData), buf: send.Buf, l: send.Type, count: send.Count}},
	)
}

func (c *call) allgathervLinear(send VOp, recvs []VOp) error {
	rl := make([]leg, 0, len(recvs))
	sl := make([]leg, 0, len(recvs))
	for peer, op := range recvs {
		rl = append(rl, leg{peer: peer, tag: c.tag(tagData), buf: op.Buf, l: op.Type, count: op.Count})
		sl = append(sl, leg{peer: peer, tag: c.tag(tagData), buf: send.Buf, l: send.Type, count: send.Count})
	}
	return c.exchangePhase(rl, sl)
}

// allgathervRing circulates blocks around the ring: at each step every
// rank forwards the block it received the step before.
func (c *call) allgathervRing(send VOp, recvs []VOp) error {
	size := len(recvs)
	id := c.rank()
	if err := c.selfCopy(send, recvs); err != nil {
		return err
	}
	right := (id + 1) % size
	left := (id - 1 + size) % size
	for s := 1; s < size; s++ {
		sendBlk := (id - s + 1 + size) % size
		recvBlk := (id - s + size) % size
		err := c.exchangePhase(
			[]leg{{peer: left, tag: c.tag(tagData), buf: recvs[recvBlk].Buf, l: recvs[recvBlk].Type, count: recvs[recvBlk].Count}},
			[]leg{{peer: right, tag: c.tag(tagData), buf: recvs[sendBlk].Buf, l: recvs[sendBlk].Type, count: recvs[sendBlk].Count}},
		)
		if err != nil {
			return err
		}
	}
	return nil
}

// allgathervBruck runs log-round dissemination: at round k every rank
// ships all 2^k blocks it holds to (id-2^k) and receives the next block
// span from (id+2^k) — ceil(log2 n) fused phases regardless of n.
func (c *call) allgathervBruck(send VOp, recvs []VOp) error {
	size := len(recvs)
	id := c.rank()
	if err := c.selfCopy(send, recvs); err != nil {
		return err
	}
	for span := 1; span < size; span <<= 1 {
		cnt := span
		if size-span < cnt {
			cnt = size - span
		}
		to := (id - span + size) % size
		from := (id + span) % size
		var rl, sl []leg
		// The receiver (to) posts exactly cnt recvs — in the final
		// non-power-of-two round cnt < span, so the send loop must be
		// bounded by cnt too or the extra sends strand in rts-sent.
		for j := 0; j < cnt; j++ {
			blk := (id + j) % size
			sl = append(sl, leg{peer: to, tag: c.tag(tagData), buf: recvs[blk].Buf, l: recvs[blk].Type, count: recvs[blk].Count})
		}
		for j := span; j < span+cnt; j++ {
			blk := (id + j) % size
			rl = append(rl, leg{peer: from, tag: c.tag(tagData), buf: recvs[blk].Buf, l: recvs[blk].Type, count: recvs[blk].Count})
		}
		if err := c.exchangePhase(rl, sl); err != nil {
			return err
		}
	}
	return nil
}

// allgathervRD exchanges doubling block groups with partner id^2^k;
// power-of-two worlds only.
func (c *call) allgathervRD(send VOp, recvs []VOp) error {
	size := len(recvs)
	id := c.rank()
	if err := c.selfCopy(send, recvs); err != nil {
		return err
	}
	for mask := 1; mask < size; mask <<= 1 {
		partner := id ^ mask
		haveBase := id &^ (mask - 1)
		partnerBase := partner &^ (mask - 1)
		var rl, sl []leg
		for j := 0; j < mask; j++ {
			blk := haveBase + j
			sl = append(sl, leg{peer: partner, tag: c.tag(tagData), buf: recvs[blk].Buf, l: recvs[blk].Type, count: recvs[blk].Count})
		}
		for j := 0; j < mask; j++ {
			blk := partnerBase + j
			rl = append(rl, leg{peer: partner, tag: c.tag(tagData), buf: recvs[blk].Buf, l: recvs[blk].Type, count: recvs[blk].Count})
		}
		if err := c.exchangePhase(rl, sl); err != nil {
			return err
		}
	}
	return nil
}

// allgathervHier aggregates contributions on the node leader, exchanges
// one bundle per node pair over the inter-node link, and fans each node's
// data back out — with all of a rank's remote-contribution unpacks fused
// into a single kernel launch.
func (c *call) allgathervHier(send VOp, recvs []VOp) error {
	e, r := c.e, c.r
	size := len(recvs)
	id := r.ID()
	node := e.nodeOf(id)
	leader := e.leaderOf(node)
	locals := e.localRanks(node)
	nodes := e.nodes()

	// Global contribution offsets (rank-asc) — ranks are node-major, so
	// each node's region is contiguous.
	off := make([]int64, size+1)
	for i := 0; i < size; i++ {
		off[i+1] = off[i] + recvs[i].bytes()
	}
	nodeOff := func(n int) int64 { return off[e.leaderOf(n)] }
	nodeLen := func(n int) int64 {
		first := e.leaderOf(n)
		return off[first+e.gpusPerNode()] - off[first]
	}

	if id == leader {
		staging := c.staging("ag-all", off[size])
		// Window A1: gather recvs from locals (IPC into staging), own
		// contribution packed into place, bundle recvs posted (contig,
		// ungated), our contribution direct-sent to local peers.
		if c.batch != nil {
			c.openWin()
		}
		var bundleRecvs, gatherRecvs []*mpi.Request
		for ns := 0; ns < nodes; ns++ {
			if ns == node || nodeLen(ns) == 0 {
				continue
			}
			q := c.bind(r.IrecvRaw(c.p, e.leaderOf(ns), c.tag(tagBundle), staging, c.bytesAt(nodeOff(ns), nodeLen(ns)), 1))
			c.all = append(c.all, q)
			bundleRecvs = append(bundleRecvs, q)
		}
		for _, lr := range locals {
			if lr == id || recvs[lr].bytes() == 0 {
				continue
			}
			q := c.bind(r.IrecvRaw(c.p, lr, c.tag(tagGather), staging, c.bytesAt(off[lr], recvs[lr].bytes()), 1))
			c.all = append(c.all, q)
			gatherRecvs = append(gatherRecvs, q)
		}
		var packHs []mpi.Handle
		if send.bytes() > 0 {
			e := r.LayoutEntry(send.Type, send.Count)
			job := pack.NewJob(pack.OpPack, send.Buf, staging, e.Blocks)
			job.Plan = e.Plan
			job.TargetOff = off[id]
			packHs = append(packHs, r.Scheme().Pack(c.p, job))
			c.bytes += send.bytes()
		}
		for _, lr := range locals {
			if lr == id || send.bytes() == 0 {
				continue
			}
			c.bytes += send.bytes()
			c.all = append(c.all, c.bind(r.IsendRaw(c.p, lr, c.tag(tagDirect), send.Buf, send.Type, send.Count)))
		}
		if c.batch != nil {
			c.closeWin()
			c.openWin()
			c.gate(gatherRecvs)
			c.closeWin()
		}
		if err := c.subsetWait(gatherRecvs); err != nil {
			return err
		}
		if err := c.waitHandles(packHs); err != nil {
			return err
		}
		// Bundle phase: our whole node region, one message per peer node.
		for nd := 0; nd < nodes; nd++ {
			if nd == node || nodeLen(node) == 0 {
				continue
			}
			c.bytes += nodeLen(node)
			c.all = append(c.all, c.bind(r.IsendRaw(c.p, e.leaderOf(nd), c.tag(tagBundle), staging, c.bytesAt(nodeOff(node), nodeLen(node)), 1)))
		}
		if err := c.subsetWait(bundleRecvs); err != nil {
			return err
		}
		// Window B: fan remote regions out to locals (one contiguous
		// slice per node per local) and unpack EVERY contribution for
		// ourselves from staging — one fused unpack launch.
		if c.batch != nil {
			c.openWin()
		}
		for _, lr := range locals {
			if lr == id {
				continue
			}
			for ns := 0; ns < nodes; ns++ {
				if ns == node || nodeLen(ns) == 0 {
					continue
				}
				c.all = append(c.all, c.bind(r.IsendRaw(c.p, lr, c.tag(tagSlice), staging, c.bytesAt(nodeOff(ns), nodeLen(ns)), 1)))
			}
		}
		var unpackHs []mpi.Handle
		for i := 0; i < size; i++ {
			if recvs[i].bytes() == 0 {
				continue
			}
			unpackHs = append(unpackHs, c.unpackJob(staging, recvs[i].Buf, recvs[i].Type, recvs[i].Count, off[i]))
		}
		if c.batch != nil {
			c.closeWin()
		}
		return c.waitHandles(unpackHs)
	}

	// --- non-leader ---
	var remote int64
	remOff := make([]int64, nodes)
	for ns := 0; ns < nodes; ns++ {
		if ns == node {
			continue
		}
		remOff[ns] = remote
		remote += nodeLen(ns)
	}
	myStaging := c.staging("ag-rem", remote)
	// Window A: everything we originate (contribution to the leader and
	// to local peers) plus all our receives, posted then closed.
	if c.batch != nil {
		c.openWin()
	}
	if send.bytes() > 0 {
		c.bytes += 2 * send.bytes()
		c.all = append(c.all, c.bind(r.IsendRaw(c.p, leader, c.tag(tagGather), send.Buf, send.Type, send.Count)))
		for _, lr := range locals {
			if lr == id || lr == leader {
				continue
			}
			c.all = append(c.all, c.bind(r.IsendRaw(c.p, lr, c.tag(tagDirect), send.Buf, send.Type, send.Count)))
		}
		c.all = append(c.all, c.bind(r.IsendRaw(c.p, id, c.tag(tagDirect), send.Buf, send.Type, send.Count)))
	}
	var directRecvs, sliceRecvs []*mpi.Request
	for _, lr := range locals {
		if recvs[lr].bytes() == 0 {
			continue
		}
		q := c.bind(r.IrecvRaw(c.p, lr, c.tag(tagDirect), recvs[lr].Buf, recvs[lr].Type, recvs[lr].Count))
		c.all = append(c.all, q)
		directRecvs = append(directRecvs, q)
	}
	for ns := 0; ns < nodes; ns++ {
		if ns == node || nodeLen(ns) == 0 {
			continue
		}
		q := c.bind(r.IrecvRaw(c.p, leader, c.tag(tagSlice), myStaging, c.bytesAt(remOff[ns], nodeLen(ns)), 1))
		c.all = append(c.all, q)
		sliceRecvs = append(sliceRecvs, q)
	}
	if c.batch != nil {
		c.closeWin()
		// Window B: local IPC scatters + self unpack fuse.
		c.openWin()
		c.gate(directRecvs)
		c.closeWin()
	}
	if err := c.subsetWait(sliceRecvs); err != nil {
		return err
	}
	// Window C: every remote contribution unpacks from the staged node
	// regions in ONE fused launch.
	if c.batch != nil {
		c.openWin()
	}
	var unpackHs []mpi.Handle
	for i := 0; i < size; i++ {
		ns := e.nodeOf(i)
		if ns == node || recvs[i].bytes() == 0 {
			continue
		}
		unpackHs = append(unpackHs, c.unpackJob(myStaging, recvs[i].Buf, recvs[i].Type, recvs[i].Count, remOff[ns]+(off[i]-nodeOff(ns))))
	}
	if c.batch != nil {
		c.closeWin()
	}
	return c.waitHandles(unpackHs)
}
