package coll_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// collWorld builds a 2-node × 4-GPU world (8 ranks) with the named scheme.
func collWorld(scheme string, mut func(*mpi.Config)) *mpi.World {
	env := sim.NewEnv()
	c := cluster.MustBuild(env, cluster.Lassen())
	cfg := mpi.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	return mpi.NewWorld(c, cfg, schemes.Factory(scheme))
}

func denseVec() *datatype.Layout {
	return datatype.Commit(datatype.Vector(8, 4, 8, datatype.Float64)) // 8×32 B blocks
}

func sparseIdx() *datatype.Layout {
	lens := make([]int, 40)
	displs := make([]int, 40)
	for i := range lens {
		lens[i] = 1
		displs[i] = i * 3
	}
	return datatype.Commit(datatype.Indexed(lens, displs, datatype.Float32))
}

// bigVec crosses the eager limit so rendezvous and staging paths engage.
func bigVec() *datatype.Layout {
	return datatype.Commit(datatype.Vector(64, 64, 128, datatype.Float64)) // 32 KiB
}

func checkNoLeaks(t *testing.T, w *mpi.World, label string) {
	t.Helper()
	if n := w.LeakedRequests(); n != 0 {
		t.Fatalf("%s: %d leaked requests", label, n)
	}
}

// --- Alltoallw ---

// makeA2AOps allocates and deterministically fills every (rank, peer)
// leg's buffers on a world. Leg sizes vary per pair (symmetric formula,
// so sender and receiver agree).
func makeA2AOps(w *mpi.World, l *datatype.Layout) [][]coll.WOp {
	size := w.Size()
	ops := make([][]coll.WOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		ops[r] = make([]coll.WOp, size)
		for peer := 0; peer < size; peer++ {
			count := 1 + (r+peer)%3
			sb := dev.Alloc(fmt.Sprintf("s-%d-%d", r, peer), int(l.ExtentBytes)*3)
			rb := dev.Alloc(fmt.Sprintf("r-%d-%d", r, peer), int(l.ExtentBytes)*3)
			rng := rand.New(rand.NewSource(int64(r*1000 + peer)))
			rng.Read(sb.Data)
			ops[r][peer] = coll.WOp{SendBuf: sb, SendType: l, SendCount: count, RecvBuf: rb, RecvType: l, RecvCount: count}
		}
	}
	return ops
}

// refAlltoallw is the sequential pt2pt reference executor: plain guarded
// Isend/Irecv legs with a user-range tag, no collective machinery.
func refAlltoallw(t *testing.T, w *mpi.World, ops [][]coll.WOp) {
	t.Helper()
	size := w.Size()
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		var reqs []*mpi.Request
		for peer := 0; peer < size; peer++ {
			op := ops[r.ID()][peer]
			reqs = append(reqs, r.Irecv(p, peer, 7, op.RecvBuf, op.RecvType, op.RecvCount))
		}
		for peer := 0; peer < size; peer++ {
			op := ops[r.ID()][peer]
			reqs = append(reqs, r.Isend(p, peer, 7, op.SendBuf, op.SendType, op.SendCount))
		}
		if err := r.Waitall(p, reqs); err != nil {
			t.Errorf("reference rank %d: %v", r.ID(), err)
		}
	})
	if err != nil {
		t.Fatalf("reference world: %v", err)
	}
}

func compareA2A(t *testing.T, label string, got, want [][]coll.WOp) {
	t.Helper()
	for r := range got {
		for peer := range got[r] {
			if !bytes.Equal(got[r][peer].RecvBuf.Data, want[r][peer].RecvBuf.Data) {
				t.Fatalf("%s: rank %d recv-from-%d differs from reference", label, r, peer)
			}
		}
	}
}

func runAlltoallw(t *testing.T, scheme string, alg coll.Algorithm, l *datatype.Layout, mut func(*mpi.Config)) {
	t.Helper()
	w := collWorld(scheme, mut)
	ops := makeA2AOps(w, l)
	e := coll.New(w, coll.Tuning{Alltoallw: alg})
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Alltoallw(p, r, ops[r.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", r.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", scheme, alg, err)
	}
	checkNoLeaks(t, w, scheme+"/"+alg.String())

	ref := collWorld("GPU-Sync", nil)
	refOps := makeA2AOps(ref, l)
	refAlltoallw(t, ref, refOps)
	checkNoLeaks(t, ref, "reference")
	compareA2A(t, scheme+"/"+alg.String(), ops, refOps)
}

func TestAlltoallwConformance(t *testing.T) {
	l := denseVec()
	for _, alg := range []coll.Algorithm{coll.Linear, coll.Pairwise, coll.Hierarchical} {
		for _, s := range schemes.Names() {
			alg, s := alg, s
			t.Run(alg.String()+"/"+s, func(t *testing.T) {
				runAlltoallw(t, s, alg, l, nil)
			})
		}
	}
}

func TestAlltoallwSparseAndAuto(t *testing.T) {
	runAlltoallw(t, "Proposed-Tuned", coll.Auto, sparseIdx(), nil)
	runAlltoallw(t, "Proposed-Auto", coll.Hierarchical, sparseIdx(), nil)
}

func TestAlltoallwRendezvous(t *testing.T) {
	for _, alg := range []coll.Algorithm{coll.Linear, coll.Hierarchical} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			runAlltoallw(t, "Proposed-Tuned", alg, bigVec(), nil)
		})
	}
}

func TestAlltoallwNoIPCFallback(t *testing.T) {
	for _, alg := range []coll.Algorithm{coll.Linear, coll.Pairwise, coll.Hierarchical} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			runAlltoallw(t, "Proposed-Tuned", alg, denseVec(), func(c *mpi.Config) { c.DisableIPC = true })
		})
	}
}

// --- Allgatherv ---

type agState struct {
	send  coll.VOp
	recvs [][]coll.VOp // [rank][src]
}

func makeAG(w *mpi.World, l *datatype.Layout) ([]coll.VOp, [][]coll.VOp) {
	size := w.Size()
	sends := make([]coll.VOp, size)
	recvs := make([][]coll.VOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		count := 1 + r%3
		sb := dev.Alloc(fmt.Sprintf("ag-s-%d", r), int(l.ExtentBytes)*3)
		rng := rand.New(rand.NewSource(int64(777 + r)))
		rng.Read(sb.Data)
		sends[r] = coll.VOp{Buf: sb, Type: l, Count: count}
		recvs[r] = make([]coll.VOp, size)
		for src := 0; src < size; src++ {
			rb := dev.Alloc(fmt.Sprintf("ag-r-%d-%d", r, src), int(l.ExtentBytes)*3)
			recvs[r][src] = coll.VOp{Buf: rb, Type: l, Count: 1 + src%3}
		}
	}
	return sends, recvs
}

func refAllgatherv(t *testing.T, w *mpi.World, sends []coll.VOp, recvs [][]coll.VOp) {
	t.Helper()
	size := w.Size()
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		var reqs []*mpi.Request
		for src := 0; src < size; src++ {
			op := recvs[r.ID()][src]
			reqs = append(reqs, r.Irecv(p, src, 9, op.Buf, op.Type, op.Count))
		}
		s := sends[r.ID()]
		for dst := 0; dst < size; dst++ {
			reqs = append(reqs, r.Isend(p, dst, 9, s.Buf, s.Type, s.Count))
		}
		if err := r.Waitall(p, reqs); err != nil {
			t.Errorf("reference rank %d: %v", r.ID(), err)
		}
	})
	if err != nil {
		t.Fatalf("reference world: %v", err)
	}
}

func runAllgatherv(t *testing.T, scheme string, alg coll.Algorithm, l *datatype.Layout) {
	t.Helper()
	w := collWorld(scheme, nil)
	sends, recvs := makeAG(w, l)
	e := coll.New(w, coll.Tuning{Allgatherv: alg})
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Allgatherv(p, r, sends[r.ID()], recvs[r.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", r.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", scheme, alg, err)
	}
	checkNoLeaks(t, w, scheme+"/"+alg.String())

	ref := collWorld("GPU-Sync", nil)
	rSends, rRecvs := makeAG(ref, l)
	refAllgatherv(t, ref, rSends, rRecvs)
	for r := range recvs {
		for src := range recvs[r] {
			if !bytes.Equal(recvs[r][src].Buf.Data, rRecvs[r][src].Buf.Data) {
				t.Fatalf("%s/%s: rank %d contribution-of-%d differs from reference", scheme, alg, r, src)
			}
		}
	}
}

func TestAllgathervConformance(t *testing.T) {
	l := denseVec()
	algs := []coll.Algorithm{coll.Linear, coll.Ring, coll.Bruck, coll.RecursiveDoubling, coll.Hierarchical}
	for _, alg := range algs {
		for _, s := range schemes.Names() {
			alg, s := alg, s
			t.Run(alg.String()+"/"+s, func(t *testing.T) {
				runAllgatherv(t, s, alg, l)
			})
		}
	}
}

// --- Gatherv / Scatterv ---

func runGatherv(t *testing.T, scheme string, alg coll.Algorithm, root int, l *datatype.Layout) {
	t.Helper()
	w := collWorld(scheme, nil)
	sends, recvs := makeAG(w, l)
	e := coll.New(w, coll.Tuning{Gatherv: alg})
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Gatherv(p, r, root, sends[r.ID()], recvs[r.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", r.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", scheme, alg, err)
	}
	checkNoLeaks(t, w, scheme+"/"+alg.String())

	ref := collWorld("GPU-Sync", nil)
	rSends, rRecvs := makeAG(ref, l)
	size := ref.Size()
	err = ref.Run(func(r *mpi.Rank, p *sim.Proc) {
		var reqs []*mpi.Request
		if r.ID() == root {
			for src := 0; src < size; src++ {
				op := rRecvs[root][src]
				reqs = append(reqs, r.Irecv(p, src, 9, op.Buf, op.Type, op.Count))
			}
		}
		s := rSends[r.ID()]
		reqs = append(reqs, r.Isend(p, root, 9, s.Buf, s.Type, s.Count))
		if werr := r.Waitall(p, reqs); werr != nil {
			t.Errorf("reference rank %d: %v", r.ID(), werr)
		}
	})
	if err != nil {
		t.Fatalf("reference world: %v", err)
	}
	for src := 0; src < size; src++ {
		if !bytes.Equal(recvs[root][src].Buf.Data, rRecvs[root][src].Buf.Data) {
			t.Fatalf("%s/%s: root recv of %d differs from reference", scheme, alg, src)
		}
	}
}

func runScatterv(t *testing.T, scheme string, alg coll.Algorithm, root int, l *datatype.Layout) {
	t.Helper()
	build := func(w *mpi.World) ([][]coll.VOp, []coll.VOp) {
		size := w.Size()
		sends := make([][]coll.VOp, size)
		recvs := make([]coll.VOp, size)
		for r := 0; r < size; r++ {
			dev := w.Rank(r).Dev
			sends[r] = make([]coll.VOp, size)
			for dst := 0; dst < size; dst++ {
				sb := dev.Alloc(fmt.Sprintf("sv-s-%d-%d", r, dst), int(l.ExtentBytes)*3)
				rng := rand.New(rand.NewSource(int64(r*100 + dst)))
				rng.Read(sb.Data)
				sends[r][dst] = coll.VOp{Buf: sb, Type: l, Count: 1 + dst%3}
			}
			rb := dev.Alloc(fmt.Sprintf("sv-r-%d", r), int(l.ExtentBytes)*3)
			recvs[r] = coll.VOp{Buf: rb, Type: l, Count: 1 + r%3}
		}
		return sends, recvs
	}
	w := collWorld(scheme, nil)
	sends, recvs := build(w)
	e := coll.New(w, coll.Tuning{Scatterv: alg})
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Scatterv(p, r, root, sends[r.ID()], recvs[r.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", r.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", scheme, alg, err)
	}
	checkNoLeaks(t, w, scheme+"/"+alg.String())

	ref := collWorld("GPU-Sync", nil)
	rSends, rRecvs := build(ref)
	size := ref.Size()
	err = ref.Run(func(r *mpi.Rank, p *sim.Proc) {
		var reqs []*mpi.Request
		rv := rRecvs[r.ID()]
		reqs = append(reqs, r.Irecv(p, root, 9, rv.Buf, rv.Type, rv.Count))
		if r.ID() == root {
			for dst := 0; dst < size; dst++ {
				op := rSends[root][dst]
				reqs = append(reqs, r.Isend(p, dst, 9, op.Buf, op.Type, op.Count))
			}
		}
		if werr := r.Waitall(p, reqs); werr != nil {
			t.Errorf("reference rank %d: %v", r.ID(), werr)
		}
	})
	if err != nil {
		t.Fatalf("reference world: %v", err)
	}
	for r := 0; r < size; r++ {
		if !bytes.Equal(recvs[r].Buf.Data, rRecvs[r].Buf.Data) {
			t.Fatalf("%s/%s: rank %d slot differs from reference", scheme, alg, r)
		}
	}
}

func TestGathervConformance(t *testing.T) {
	l := denseVec()
	for _, alg := range []coll.Algorithm{coll.Linear, coll.Hierarchical} {
		for _, s := range schemes.Names() {
			alg, s := alg, s
			t.Run(alg.String()+"/"+s, func(t *testing.T) {
				runGatherv(t, s, alg, 5, l) // non-leader root on node 1
			})
		}
	}
	// Leader root exercises the other leader/root coincidence paths.
	runGatherv(t, "Proposed-Tuned", coll.Hierarchical, 0, l)
}

func TestScattervConformance(t *testing.T) {
	l := denseVec()
	for _, alg := range []coll.Algorithm{coll.Linear, coll.Hierarchical} {
		for _, s := range schemes.Names() {
			alg, s := alg, s
			t.Run(alg.String()+"/"+s, func(t *testing.T) {
				runScatterv(t, s, alg, 5, l)
			})
		}
	}
	runScatterv(t, "Proposed-Tuned", coll.Hierarchical, 0, l)
}

// --- NeighborAlltoallw ---

// makeNeighborOps builds a ring neighborhood where every peer appears
// twice, exercising the index-FIFO matching contract.
func makeNeighborOps(w *mpi.World, l *datatype.Layout) [][]mpi.NeighborOp {
	size := w.Size()
	ops := make([][]mpi.NeighborOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		left := (r - 1 + size) % size
		right := (r + 1) % size
		mk := func(k, peer int) mpi.NeighborOp {
			sb := dev.Alloc(fmt.Sprintf("n-s-%d-%d", r, k), int(l.ExtentBytes))
			rb := dev.Alloc(fmt.Sprintf("n-r-%d-%d", r, k), int(l.ExtentBytes))
			rng := rand.New(rand.NewSource(int64(r*10 + k)))
			rng.Read(sb.Data)
			return mpi.NeighborOp{Peer: peer, SendBuf: sb, SendType: l, RecvBuf: rb, RecvType: l, Count: 1}
		}
		ops[r] = []mpi.NeighborOp{mk(0, left), mk(1, right), mk(2, left), mk(3, right)}
	}
	return ops
}

func TestNeighborAlltoallwConformance(t *testing.T) {
	l := denseVec()
	for _, s := range schemes.Names() {
		s := s
		t.Run(s, func(t *testing.T) {
			w := collWorld(s, nil)
			ops := makeNeighborOps(w, l)
			e := coll.New(w, coll.Tuning{})
			err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
				if cerr := e.NeighborAlltoallw(p, r, ops[r.ID()]); cerr != nil {
					t.Errorf("rank %d: %v", r.ID(), cerr)
				}
			})
			if err != nil {
				t.Fatalf("%s: %v", s, err)
			}
			checkNoLeaks(t, w, s)

			// Reference: the deprecated per-message NeighborExchange.
			ref := collWorld("GPU-Sync", nil)
			refOps := makeNeighborOps(ref, l)
			if err := ref.Run(func(r *mpi.Rank, p *sim.Proc) {
				r.NeighborExchange(p, refOps[r.ID()])
			}); err != nil {
				t.Fatalf("reference world: %v", err)
			}
			for r := range ops {
				for k := range ops[r] {
					if !bytes.Equal(ops[r][k].RecvBuf.Data, refOps[r][k].RecvBuf.Data) {
						t.Fatalf("%s: rank %d leg %d differs from reference", s, r, k)
					}
				}
			}
		})
	}
}

// --- chaos: collectives under fault plans must stay byte-exact with
// zero leaked requests ---

func TestCollectivesChaos(t *testing.T) {
	l := denseVec()
	for _, preset := range []string{"flaky-ib", "degraded-link"} {
		for _, alg := range []coll.Algorithm{coll.Linear, coll.Hierarchical} {
			preset, alg := preset, alg
			t.Run(preset+"/"+alg.String(), func(t *testing.T) {
				plan, err := fault.Preset(preset, 23)
				if err != nil {
					t.Fatal(err)
				}
				w := collWorld("Proposed-Tuned", func(c *mpi.Config) { c.Faults = plan })
				ops := makeA2AOps(w, l)
				e := coll.New(w, coll.Tuning{Alltoallw: alg})
				err = w.Run(func(r *mpi.Rank, p *sim.Proc) {
					if cerr := e.Alltoallw(p, r, ops[r.ID()]); cerr != nil {
						t.Errorf("rank %d: %v", r.ID(), cerr)
					}
				})
				if err != nil {
					t.Fatalf("chaos world: %v", err)
				}
				checkNoLeaks(t, w, preset)

				ref := collWorld("GPU-Sync", nil)
				refOps := makeA2AOps(ref, l)
				refAlltoallw(t, ref, refOps)
				compareA2A(t, preset+"/"+alg.String(), ops, refOps)
			})
		}
	}
}
