package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// One-sided collective schedules: the same ring/Bruck communication
// patterns as the two-sided algorithms, but over rma puts into a
// per-call window with slotted-signal synchronization instead of
// rendezvous. The cost shape is the paper's motivation for
// GPU-initiated transfer: each hop pays a NIC doorbell and a wire leg —
// no RTS/CTS/FIN control round-trip, no target-side progress engine —
// and the first hop is a fused PackPut (one kernel launch deposits the
// packed bytes directly on the wire) whenever the engine's fusion
// window is enabled.
//
// Signal slots encode the schedule round, so a delayed round-k deposit
// can never satisfy a round-j waiter (j < k) when deliveries reorder
// under fault injection. Window and signal names carry the engine's
// fabric namespace id and the call sequence number; like tags, this
// relies on the SPMD contract that every rank issues the same
// collectives in the same order.

// osName is the per-call rendezvous namespace for windows and signals.
func (c *call) osName() string {
	return fmt.Sprintf("coll-os-%d-%d", c.e.osID, c.seq)
}

// allgathervOneSided gathers every rank's contribution into a symmetric
// window laid out as the concatenation of all blocks (block i at the
// globally uniform offset offs[i]), then unpacks each block into the
// caller's receive layouts with one fused kernel.
//
// Ring: step s forwards block (id-s+1) to the right neighbour; slot s
// signals its arrival, and step s+1 waits on slot s before forwarding.
// Bruck: round k (span 2^k) sends the min(span, size-span) blocks
// starting at id to rank id-span; slot k counts the round's arrivals.
func (c *call) allgathervOneSided(send VOp, recvs []VOp, bruck bool) error {
	e, p := c.e, c.p
	f := e.rmaFabric()
	size := c.size()
	id := c.r.ID()
	ep := f.Endpoint(id)
	fused := c.batch != nil

	offs := make([]int64, size+1)
	for i, op := range recvs {
		offs[i+1] = offs[i] + op.bytes()
	}
	total := offs[size]
	if total <= 0 {
		total = 1
	}
	name := c.osName()
	win, err := f.OpenWindow(id, name, total)
	if err != nil {
		return err
	}
	defer f.CloseWindow(win)
	sig, err := f.OpenSignal(name+"-sig", size)
	if err != nil {
		return err
	}
	defer f.CloseSignal(sig)

	ownBytes := send.bytes()
	packPut := func(target, slot int) error {
		if ownBytes > 0 {
			c.bytes += ownBytes
			return ep.PackPut(p, win, target, offs[id], send.Buf, send.Type, send.Count, offs[id], sig, slot, 1, fused)
		}
		return ep.SignalPut(p, sig, target, slot, 1)
	}
	forward := func(target, blk, slot int) error {
		n := offs[blk+1] - offs[blk]
		c.bytes += n
		return ep.PutSignal(p, win, target, offs[blk], win.Buf(id), offs[blk], n, sig, slot, 1)
	}

	switch {
	case size == 1:
		if ownBytes > 0 {
			if err := ep.PackPut(p, win, id, offs[id], send.Buf, send.Type, send.Count, offs[id], nil, 0, 0, fused); err != nil {
				return err
			}
		}
	case bruck:
		// Round 0 packs the own block and deposits it one rank to the
		// left; round k forwards the lowest min(2^k, size-2^k) held
		// blocks a span of 2^k to the left, after round k-1's batch
		// (cnt deposits on slot k-1) has fully arrived.
		prevCnt := 0
		k := 0
		for span := 1; span < size; span <<= 1 {
			to := (id - span + size) % size
			cnt := span
			if size-span < cnt {
				cnt = size - span
			}
			if k == 0 {
				if err := packPut(to, 0); err != nil {
					return err
				}
			} else {
				ep.WaitSignal(p, sig, k-1, uint64(prevCnt))
				for j := 0; j < cnt; j++ {
					if err := forward(to, (id+j)%size, k); err != nil {
						return err
					}
				}
			}
			prevCnt, k = cnt, k+1
		}
		ep.WaitSignal(p, sig, k-1, uint64(prevCnt))
	default: // ring
		right := (id + 1) % size
		if err := packPut(right, 1); err != nil {
			return err
		}
		for s := 2; s < size; s++ {
			ep.WaitSignal(p, sig, s-1, 1)
			if err := forward(right, (id-s+1+size)%size, s); err != nil {
				return err
			}
		}
		ep.WaitSignal(p, sig, size-1, 1)
	}

	// Every block has landed: unpack them all in one fused window, then
	// drain our outstanding puts before the window can be released.
	c.openWin()
	var hs []mpi.Handle
	for i, op := range recvs {
		if op.bytes() == 0 {
			continue
		}
		hs = append(hs, c.unpackJob(win.Buf(id), op.Buf, op.Type, op.Count, offs[i]))
	}
	c.closeWin()
	if err := c.waitHandles(hs); err != nil {
		return err
	}
	return ep.Quiet(p)
}

// alltoallwOneSided runs the personalized exchange over puts into a
// dynamic (per-rank-sized) window: the in-region holds one slot per
// source at locally computed offsets, and peers learn where to deposit
// through a signal-borne offset exchange (a zero-byte SignalPut whose
// value is the offset) — the control metadata never rides in a payload
// buffer, so lazy mode stays exact. Each destination leg is a fused
// PackPut from the caller's send layout via the window's out-region;
// slot src of the data signal announces src's deposit.
//
// The ring schedule issues destinations in (id+s) order, one peer per
// step; the Bruck schedule groups destinations into power-of-two
// distance phases before issuing.
func (c *call) alltoallwOneSided(ops []WOp, bruck bool) error {
	e, p := c.e, c.p
	f := e.rmaFabric()
	size := c.size()
	id := c.r.ID()
	ep := f.Endpoint(id)
	fused := c.batch != nil

	inOff := make([]int64, size+1)
	outOff := make([]int64, size+1)
	for i, op := range ops {
		inOff[i+1] = inOff[i] + op.recvBytes()
		outOff[i+1] = outOff[i] + op.sendBytes()
	}
	inTotal := inOff[size]
	local := inTotal + outOff[size]
	if local <= 0 {
		local = 1
	}
	name := c.osName()
	win, err := f.OpenWindowSized(id, name, local)
	if err != nil {
		return err
	}
	defer f.CloseWindow(win)
	sigOff, err := f.OpenSignal(name+"-off", size)
	if err != nil {
		return err
	}
	defer f.CloseSignal(sigOff)
	sigDat, err := f.OpenSignal(name+"-dat", size)
	if err != nil {
		return err
	}
	defer f.CloseSignal(sigDat)

	// Offset exchange: tell every peer where its bytes land in our
	// window. Sent before any data wait, and only after our window is
	// attached — so a peer that has our offset also has our window.
	for s := 1; s < size; s++ {
		dst := (id + s) % size
		if err := ep.SignalPut(p, sigOff, dst, id, uint64(inOff[dst])+1); err != nil {
			return err
		}
	}

	putTo := func(dst int) error {
		var off int64
		if dst == id {
			off = inOff[id]
		} else {
			ep.WaitSignal(p, sigOff, dst, 1)
			off = int64(sigOff.Value(id, dst) - 1)
		}
		op := ops[dst]
		n := op.sendBytes()
		if n == 0 {
			// Zero-byte leg: the arrival signal still fires so the
			// receiver's wait loop stays uniform.
			return ep.SignalPut(p, sigDat, dst, id, 1)
		}
		c.bytes += n
		return ep.PackPut(p, win, dst, off, op.SendBuf, op.SendType, op.SendCount, inTotal+outOff[dst], sigDat, id, 1, fused)
	}

	if bruck {
		if err := putTo(id); err != nil {
			return err
		}
		for span := 1; span < size; span <<= 1 {
			hi := 2 * span
			if size < hi {
				hi = size
			}
			for s := span; s < hi; s++ {
				if err := putTo((id + s) % size); err != nil {
					return err
				}
			}
		}
	} else {
		for s := 0; s < size; s++ {
			if err := putTo((id + s) % size); err != nil {
				return err
			}
		}
	}

	// Wait for every source's deposit, unpack the in-region in one
	// fused window, and drain our own outstanding puts.
	for src := 0; src < size; src++ {
		ep.WaitSignal(p, sigDat, src, 1)
	}
	c.openWin()
	var hs []mpi.Handle
	for src, op := range ops {
		if op.recvBytes() == 0 {
			continue
		}
		hs = append(hs, c.unpackJob(win.Buf(id), op.RecvBuf, op.RecvType, op.RecvCount, inOff[src]))
	}
	c.closeWin()
	if err := c.waitHandles(hs); err != nil {
		return err
	}
	return ep.Quiet(p)
}
