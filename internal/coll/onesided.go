package coll

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/rma"
)

// One-sided collective schedules: the same ring/Bruck communication
// patterns as the two-sided algorithms, but over rma puts into a
// window with slotted-signal synchronization instead of rendezvous. The
// cost shape is the paper's motivation for GPU-initiated transfer: each
// hop pays a NIC doorbell and a wire leg — no RTS/CTS/FIN control
// round-trip, no target-side progress engine — and the first hop is a
// fused PackPut (one kernel launch deposits the packed bytes directly on
// the wire) whenever the engine's fusion window is enabled.
//
// Signal slots encode the schedule round, so a delayed round-k deposit
// can never satisfy a round-j waiter (j < k) when deliveries reorder
// under fault injection. Window and signal names carry the engine's
// fabric namespace id and the call sequence number; like tags, this
// relies on the SPMD contract that every rank issues the same
// collectives in the same order.
//
// Failure tolerance (PR 10): every signal wait and verb observes the
// heartbeat detector and the fabric epoch, so a crashed peer surfaces as
// a typed *mpi.RankFailedError (triggering finish()'s auto-revoke)
// instead of a stall. Rank indices are communicator ranks == fabric
// member indices: seatFabric reseats the shared fabric onto the call's
// communicator after a Shrink, which densely re-ranks members and
// rebuilds the symmetric heap.

// osName is the per-call rendezvous namespace for windows and signals.
// Post-shrink epochs are folded in so a retried collective can never
// collide with its failed pre-shrink incarnation (epoch 0 keeps the
// historical names, preserving golden traces).
func (c *call) osName() string {
	if ep := c.cm.Epoch(); ep != 0 {
		return fmt.Sprintf("coll-os-%d-%d-e%d", c.e.osID, c.seq, ep)
	}
	return fmt.Sprintf("coll-os-%d-%d", c.e.osID, c.seq)
}

// seatFabric returns the engine's fabric, re-rendezvoused onto the
// call's communicator. Reseat is a cheap no-op when the rank already
// joined the epoch; after a Shrink the first survivor rebuilds the
// fabric (fresh epoch, empty symmetric heap) and every member pays the
// modeled rendezvous cost once.
func (c *call) seatFabric() (*rma.Fabric, error) {
	f := c.e.rmaFabric()
	if err := f.Reseat(c.p, c.r, c.cm); err != nil {
		return nil, err
	}
	return f, nil
}

// allgathervOneSided gathers every rank's contribution into a symmetric
// window laid out as the concatenation of all blocks (block i at the
// globally uniform offset offs[i]), then unpacks each block into the
// caller's receive layouts with one fused kernel.
//
// Ring: step s forwards block (id-s+1) to the right neighbour; slot s
// signals its arrival, and step s+1 waits on slot s before forwarding.
// Bruck: round k (span 2^k) sends the min(span, size-span) blocks
// starting at id to rank id-span; slot k counts the round's arrivals.
func (c *call) allgathervOneSided(send VOp, recvs []VOp, bruck bool) error {
	p := c.p
	f, err := c.seatFabric()
	if err != nil {
		return err
	}
	size := c.size()
	id := c.rank()
	ep := f.Endpoint(c.r.ID())
	fused := c.batch != nil

	offs := make([]int64, size+1)
	for i, op := range recvs {
		offs[i+1] = offs[i] + op.bytes()
	}
	total := offs[size]
	if total <= 0 {
		total = 1
	}
	name := c.osName()
	win, err := f.OpenWindow(id, name, total)
	if err != nil {
		return err
	}
	defer f.CloseWindow(win)
	sig, err := f.OpenSignal(name+"-sig", size)
	if err != nil {
		return err
	}
	defer f.CloseSignal(sig)

	ownBytes := send.bytes()
	packPut := func(target, slot int) error {
		if ownBytes > 0 {
			c.bytes += ownBytes
			return ep.PackPut(p, win, target, offs[id], send.Buf, send.Type, send.Count, offs[id], sig, slot, 1, fused)
		}
		return ep.SignalPut(p, sig, target, slot, 1)
	}
	forward := func(target, blk, slot int) error {
		n := offs[blk+1] - offs[blk]
		c.bytes += n
		return ep.PutSignal(p, win, target, offs[blk], win.Buf(id), offs[blk], n, sig, slot, 1)
	}

	switch {
	case size == 1:
		if ownBytes > 0 {
			if err := ep.PackPut(p, win, id, offs[id], send.Buf, send.Type, send.Count, offs[id], nil, 0, 0, fused); err != nil {
				return err
			}
		}
	case bruck:
		// Round 0 packs the own block and deposits it one rank to the
		// left; round k forwards the lowest min(2^k, size-2^k) held
		// blocks a span of 2^k to the left, after round k-1's batch
		// (cnt deposits on slot k-1) has fully arrived.
		prevCnt := 0
		k := 0
		for span := 1; span < size; span <<= 1 {
			to := (id - span + size) % size
			cnt := span
			if size-span < cnt {
				cnt = size - span
			}
			if k == 0 {
				if err := packPut(to, 0); err != nil {
					return err
				}
			} else {
				if err := ep.WaitSignal(p, sig, k-1, uint64(prevCnt)); err != nil {
					return err
				}
				for j := 0; j < cnt; j++ {
					if err := forward(to, (id+j)%size, k); err != nil {
						return err
					}
				}
			}
			prevCnt, k = cnt, k+1
		}
		if err := ep.WaitSignal(p, sig, k-1, uint64(prevCnt)); err != nil {
			return err
		}
	default: // ring
		right := (id + 1) % size
		if err := packPut(right, 1); err != nil {
			return err
		}
		for s := 2; s < size; s++ {
			if err := ep.WaitSignal(p, sig, s-1, 1); err != nil {
				return err
			}
			if err := forward(right, (id-s+1+size)%size, s); err != nil {
				return err
			}
		}
		if err := ep.WaitSignal(p, sig, size-1, 1); err != nil {
			return err
		}
	}

	// Every block has landed: unpack them all in one fused window, then
	// drain our outstanding puts before the window can be released.
	c.openWin()
	var hs []mpi.Handle
	for i, op := range recvs {
		if op.bytes() == 0 {
			continue
		}
		hs = append(hs, c.unpackJob(win.Buf(id), op.Buf, op.Type, op.Count, offs[i]))
	}
	c.closeWin()
	if err := c.waitHandles(hs); err != nil {
		return err
	}
	return ep.Quiet(p)
}

// a2aState is a rank's persistent Alltoallw fabric state: a negotiated
// dynamic window plus offset/data signals that survive across calls, so
// the per-call offset exchange (n-1 zero-byte control SignalPuts) is
// paid once per shape, not once per call.
//
// The window's in-region is double-buffered by call parity. A sender's
// call k+2 cannot start before its call k+1 completed, which requires
// every receiver to have sent its own k+1 data, which happens only after
// that receiver finished call k — so by the time parity p is written
// again (call k+2), its previous occupant (call k) has been unpacked.
// Data-signal slots are cumulative: call k waits for slot values >= k.
type a2aState struct {
	epoch   int    // fabric epoch the resources were opened under
	gen     int    // negotiation generation (bumped on local shape change)
	shape   uint64 // FNV-1a signature of the local send/recv byte vectors
	win     *rma.Window
	sigOff  *rma.Signal // 2*size slots: [parity*size + src] -> src's deposit offset + 1
	sigDat  *rma.Signal // size slots: cumulative per-source deposit counters
	inTotal int64
	calls   uint64 // completed exchanges this generation
}

// a2aShape signs the local exchange geometry. Any change — counts or
// per-peer byte totals — forces renegotiation. A shape change that is
// not global (SPMD ranks disagreeing) pairs a publisher and waiter on
// different generation names and surfaces as a loud *StallError from the
// watchdog, never as silent corruption.
func a2aShape(ops []WOp) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(len(ops)))
	for _, op := range ops {
		mix(uint64(op.sendBytes()))
		mix(uint64(op.recvBytes()))
	}
	return h
}

// a2aResources returns the rank's negotiated Alltoallw state, (re)building
// it when the shape or the fabric epoch changed. Publication of the n-1
// control offsets happens in alltoallwOneSided on the generation's first
// call.
func (c *call) a2aResources(f *rma.Fabric, ops []WOp, id int, inTotal, outTotal int64) (*a2aState, error) {
	shape := a2aShape(ops)
	st := c.st.a2a
	if st != nil && (st.epoch != f.Epoch() || st.shape != shape) {
		if st.epoch == f.Epoch() {
			// Same epoch, new shape: balance this rank's opens so the
			// last renegotiating rank frees the old generation.
			f.CloseWindow(st.win)
			f.CloseSignal(st.sigOff)
			f.CloseSignal(st.sigDat)
		}
		st = &a2aState{gen: st.gen + 1}
		c.st.a2a = st
	}
	if st == nil {
		st = &a2aState{}
		c.st.a2a = st
	}
	if st.win != nil {
		return st, nil
	}
	size := c.size()
	name := fmt.Sprintf("coll-os-%d-a2a-g%d", c.e.osID, st.gen)
	if ep := c.cm.Epoch(); ep != 0 {
		name = fmt.Sprintf("%s-e%d", name, ep)
	}
	local := 2*inTotal + outTotal
	if local <= 0 {
		local = 1
	}
	win, err := f.OpenWindowSized(id, name, local)
	if err != nil {
		return nil, err
	}
	sigOff, err := f.OpenSignal(name+"-off", 2*size)
	if err != nil {
		f.CloseWindow(win)
		return nil, err
	}
	sigDat, err := f.OpenSignal(name+"-dat", size)
	if err != nil {
		f.CloseWindow(win)
		f.CloseSignal(sigOff)
		return nil, err
	}
	st.epoch = f.Epoch()
	st.shape = shape
	st.win, st.sigOff, st.sigDat = win, sigOff, sigDat
	st.inTotal = inTotal
	st.calls = 0
	return st, nil
}

// alltoallwOneSided runs the personalized exchange over puts into a
// dynamic (per-rank-sized) window: the in-region holds one slot per
// source at locally computed offsets, and peers learn where to deposit
// through a signal-borne offset exchange (a zero-byte SignalPut whose
// value is the offset) — the control metadata never rides in a payload
// buffer, so lazy mode stays exact. Each destination leg is a fused
// PackPut from the caller's send layout via the window's out-region;
// slot src of the data signal announces src's deposit.
//
// The window, signals, and offset exchange are negotiated once per shape
// (a2aResources) and reused: repeat calls with the same geometry issue
// zero control SignalPuts, depositing into parity-alternating in-regions
// against cumulative data-signal thresholds.
//
// The ring schedule issues destinations in (id+s) order, one peer per
// step; the Bruck schedule groups destinations into power-of-two
// distance phases before issuing.
func (c *call) alltoallwOneSided(ops []WOp, bruck bool) error {
	p := c.p
	f, err := c.seatFabric()
	if err != nil {
		return err
	}
	size := c.size()
	id := c.rank()
	ep := f.Endpoint(c.r.ID())
	fused := c.batch != nil

	inOff := make([]int64, size+1)
	outOff := make([]int64, size+1)
	for i, op := range ops {
		inOff[i+1] = inOff[i] + op.recvBytes()
		outOff[i+1] = outOff[i] + op.sendBytes()
	}
	inTotal := inOff[size]
	st, err := c.a2aResources(f, ops, id, inTotal, outOff[size])
	if err != nil {
		return err
	}
	win, sigOff, sigDat := st.win, st.sigOff, st.sigDat
	k := st.calls + 1             // 1-based call index within the generation
	parity := int64(st.calls & 1) // which in-region this call deposits into

	if st.calls == 0 {
		// Offset exchange, once per negotiated shape: tell every peer
		// where its bytes land in our window — both parity regions. Sent
		// before any data wait, and only after our window is attached, so
		// a peer that has our offsets also has our window.
		for s := 1; s < size; s++ {
			dst := (id + s) % size
			if err := ep.SignalPut(p, sigOff, dst, id, uint64(inOff[dst])+1); err != nil {
				return err
			}
			if err := ep.SignalPut(p, sigOff, dst, size+id, uint64(inTotal+inOff[dst])+1); err != nil {
				return err
			}
		}
	}

	putTo := func(dst int) error {
		var off int64
		if dst == id {
			off = parity*inTotal + inOff[id]
		} else {
			slot := int(parity)*size + dst
			if err := ep.WaitSignal(p, sigOff, slot, 1); err != nil {
				return err
			}
			off = int64(sigOff.Value(id, slot) - 1)
		}
		op := ops[dst]
		n := op.sendBytes()
		if n == 0 {
			// Zero-byte leg: the arrival signal still fires so the
			// receiver's wait loop stays uniform.
			return ep.SignalPut(p, sigDat, dst, id, 1)
		}
		c.bytes += n
		return ep.PackPut(p, win, dst, off, op.SendBuf, op.SendType, op.SendCount, 2*inTotal+outOff[dst], sigDat, id, 1, fused)
	}

	if bruck {
		if err := putTo(id); err != nil {
			return err
		}
		for span := 1; span < size; span <<= 1 {
			hi := 2 * span
			if size < hi {
				hi = size
			}
			for s := span; s < hi; s++ {
				if err := putTo((id + s) % size); err != nil {
					return err
				}
			}
		}
	} else {
		for s := 0; s < size; s++ {
			if err := putTo((id + s) % size); err != nil {
				return err
			}
		}
	}

	// Wait for every source's cumulative deposit count, unpack this
	// parity's in-region in one fused window, and drain our own
	// outstanding puts.
	for src := 0; src < size; src++ {
		if err := ep.WaitSignal(p, sigDat, src, k); err != nil {
			return err
		}
	}
	c.openWin()
	var hs []mpi.Handle
	for src, op := range ops {
		if op.recvBytes() == 0 {
			continue
		}
		hs = append(hs, c.unpackJob(win.Buf(id), op.RecvBuf, op.RecvType, op.RecvCount, parity*inTotal+inOff[src]))
	}
	c.closeWin()
	if err := c.waitHandles(hs); err != nil {
		return err
	}
	if err := ep.Quiet(p); err != nil {
		return err
	}
	st.calls++
	return nil
}
