package coll_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/coll"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// This file extends the rank-crash chaos contract to lazy payload mode:
// the self-healing collectives (revocation, fusion-window teardown, the
// PendingFusedJobs oracle) must behave identically whether payloads are
// real bytes or span algebra, and the exact/lazy pair under one fault
// plan must replay the very same failure: same final clock, same
// fault-event sequence, same per-rank timeline sums.

// lazyChaosObs is one seeded run's observables for cross-mode comparison.
type lazyChaosObs struct {
	finalClock int64
	crashed    []int
	rankErrs   []error
	faultEvs   []string
	tlSums     []string
	leaked     int
	fusedLeft  int
}

// runLazyChaosA2A drives a crash-preset Alltoallw in one payload mode.
func runLazyChaosA2A(t *testing.T, lazy bool, alg coll.Algorithm, seed uint64) *lazyChaosObs {
	t.Helper()
	plan, err := fault.Preset("rank-crash", seed)
	if err != nil {
		t.Fatal(err)
	}
	env, w := lazyCollWorld("Proposed-Tuned", lazy, func(c *mpi.Config) {
		c.Faults = plan
		c.Timeline = &timeline.Options{}
	})
	ops := makeA2AOpsPRF(w, denseVec())
	e := coll.New(w, coll.Tuning{Alltoallw: alg})
	obs := &lazyChaosObs{rankErrs: make([]error, w.Size())}
	const horizon = 400_000
	runErr := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		for obs.rankErrs[r.ID()] == nil && p.Now() < horizon {
			obs.rankErrs[r.ID()] = e.Alltoallw(p, r, ops[r.ID()])
		}
	})
	if runErr != nil {
		t.Fatalf("lazy=%v seed %d: world did not terminate cleanly: %v", lazy, seed, runErr)
	}
	obs.finalClock = env.Now()
	obs.crashed = w.CrashedRanks()
	for _, ev := range w.FaultEvents() {
		obs.faultEvs = append(obs.faultEvs, fmt.Sprintf("%d %s %s %s", ev.At, ev.Site, ev.Kind, ev.Detail))
	}
	for i := 0; i < w.Size(); i++ {
		obs.tlSums = append(obs.tlSums, w.Rank(i).Timeline().Sums().String())
	}
	obs.leaked = w.LeakedRequests()
	obs.fusedLeft = w.PendingFusedJobs()
	return obs
}

// TestLazyCollectivesRankCrash asserts both halves at once: (1) lazy-mode
// chaos obeys the full ULFM contract — typed survivor errors, exactly one
// crash, zero leaked requests and zero stranded fused jobs — and (2) the
// byte-exact run under the same plan is observationally identical, so the
// failure path provably never depends on the payload representation.
func TestLazyCollectivesRankCrash(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, alg := range []coll.Algorithm{coll.Linear, coll.Pairwise, coll.Hierarchical} {
		alg := alg
		t.Run("alltoallw/"+alg.String(), func(t *testing.T) {
			for _, seed := range seeds {
				lz := runLazyChaosA2A(t, true, alg, seed)
				if len(lz.crashed) != 1 {
					t.Fatalf("seed %d: crashed ranks %v, want exactly one", seed, lz.crashed)
				}
				dead := lz.crashed[0]
				for i, rerr := range lz.rankErrs {
					if i == dead {
						continue
					}
					if rerr == nil {
						t.Fatalf("seed %d: lazy survivor %d returned success across the failure window", seed, i)
					}
					if !errors.Is(rerr, mpi.ErrRankFailed) && !errors.Is(rerr, mpi.ErrCommRevoked) {
						t.Fatalf("seed %d: lazy survivor %d got untyped error: %v", seed, i, rerr)
					}
				}
				if lz.leaked != 0 || lz.fusedLeft != 0 {
					t.Fatalf("seed %d: lazy run leaked state: requests=%d fused=%d", seed, lz.leaked, lz.fusedLeft)
				}

				ex := runLazyChaosA2A(t, false, alg, seed)
				if ex.finalClock != lz.finalClock {
					t.Fatalf("seed %d: final clock differs: exact %d vs lazy %d", seed, ex.finalClock, lz.finalClock)
				}
				if fmt.Sprint(ex.faultEvs) != fmt.Sprint(lz.faultEvs) {
					t.Fatalf("seed %d: fault-event sequences differ:\n  exact: %v\n  lazy:  %v", seed, ex.faultEvs, lz.faultEvs)
				}
				for i := range ex.tlSums {
					if ex.tlSums[i] != lz.tlSums[i] {
						t.Fatalf("seed %d: rank %d timeline sums differ:\n  exact: %s\n  lazy:  %s",
							seed, i, ex.tlSums[i], lz.tlSums[i])
					}
				}
				for i := range ex.rankErrs {
					if (ex.rankErrs[i] == nil) != (lz.rankErrs[i] == nil) {
						t.Fatalf("seed %d: rank %d outcome differs: exact=%v lazy=%v",
							seed, i, ex.rankErrs[i], lz.rankErrs[i])
					}
				}
			}
		})
	}
}

// TestLazyChaosReplayIdentical pins same-seed determinism with faults AND
// lazy payloads combined: two lazy runs replay bit-identically.
func TestLazyChaosReplayIdentical(t *testing.T) {
	a := runLazyChaosA2A(t, true, coll.Hierarchical, 2)
	b := runLazyChaosA2A(t, true, coll.Hierarchical, 2)
	if a.finalClock != b.finalClock {
		t.Fatalf("final clock not reproducible: %d vs %d", a.finalClock, b.finalClock)
	}
	if fmt.Sprint(a.faultEvs) != fmt.Sprint(b.faultEvs) {
		t.Fatal("fault-event sequence not reproducible")
	}
	for i := range a.tlSums {
		if a.tlSums[i] != b.tlSums[i] {
			t.Fatalf("rank %d timeline sums not reproducible", i)
		}
	}
}
