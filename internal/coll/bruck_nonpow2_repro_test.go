package coll_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// Repro: Bruck allgatherv on a non-power-of-two world (3 nodes x 2 GPUs = 6 ranks).
func TestBruckNonPow2Repro(t *testing.T) {
	env := sim.NewEnv()
	spec := cluster.Lassen().WithNodes(3)
	spec.GPUsPerNode = 2
	c := cluster.MustBuild(env, spec)
	w := mpi.NewWorld(c, mpi.DefaultConfig(), schemes.Factory("Proposed-Tuned"))
	l := bigVec()
	sends, recvs := makeAG(w, l)
	e := coll.New(w, coll.Tuning{Allgatherv: coll.Bruck})
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Allgatherv(p, r, sends[r.ID()], recvs[r.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", r.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	if n := w.LeakedRequests(); n != 0 {
		t.Fatalf("%d leaked requests", n)
	}
}
