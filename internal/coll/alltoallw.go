package coll

import (
	"encoding/binary"
	"fmt"

	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/sim"
)

// WOp is one peer's slot of an Alltoallw call: what this rank sends to and
// receives from that peer, with per-peer datatypes and counts — the shape
// of MPI_Alltoallw with displacements folded into the layouts (build them
// with datatype.Hindexed over byte displacements).
type WOp struct {
	SendBuf   *gpu.Buffer
	SendType  *datatype.Layout
	SendCount int
	RecvBuf   *gpu.Buffer
	RecvType  *datatype.Layout
	RecvCount int
}

func (op WOp) sendBytes() int64 {
	if op.SendType == nil {
		return 0
	}
	return op.SendType.SizeBytes * int64(op.SendCount)
}

func (op WOp) recvBytes() int64 {
	if op.RecvType == nil {
		return 0
	}
	return op.RecvType.SizeBytes * int64(op.RecvCount)
}

// Alltoallw runs a personalized all-to-all exchange: ops[i] describes the
// legs with peer i, and len(ops) must equal the world size on every rank.
// Algorithms: Linear (one fused phase), Pairwise (one peer per fused
// step), Hierarchical (two-level node-leader aggregation), Auto.
func (e *Engine) Alltoallw(p *sim.Proc, r *mpi.Rank, ops []WOp) error {
	if len(ops) != e.size() {
		return fmt.Errorf("coll: Alltoallw: %d ops for %d ranks", len(ops), e.size())
	}
	alg := e.tuning.Alltoallw
	if err := validAlg("alltoallw", alg, Linear, Pairwise, Hierarchical, OneSidedRing, OneSidedBruck); err != nil {
		return err
	}
	if alg == Auto {
		alg = e.pickAlltoallw(ops)
	}
	alg = e.flatten(alg)
	legs := 2 * len(ops)
	if alg == Hierarchical {
		legs += 2*e.gpusPerNode() + 2*e.nodes() // size/gather/bundle overhead
	}
	c := e.begin(r, p, legs)
	var err error
	switch alg {
	case Linear:
		err = c.alltoallwLinear(ops)
	case Pairwise:
		err = c.alltoallwPairwise(ops)
	case Hierarchical:
		err = c.alltoallwHier(ops)
	case OneSidedRing, OneSidedBruck:
		err = c.alltoallwOneSided(ops, alg == OneSidedBruck)
	}
	return c.finish("alltoallw", alg, err)
}

func (e *Engine) pickAlltoallw(ops []WOp) Algorithm {
	var maxLeg int64
	for _, op := range ops {
		if b := op.sendBytes(); b > maxLeg {
			maxLeg = b
		}
		if b := op.recvBytes(); b > maxLeg {
			maxLeg = b
		}
	}
	if maxLeg <= e.tuning.SmallMsgBytes {
		return Linear
	}
	if e.topoHierarchical() {
		return Hierarchical
	}
	return Pairwise
}

// alltoallwLinear posts every leg in one fused phase: all packs launch as
// one kernel, all unpacks/IPC scatters as another.
func (c *call) alltoallwLinear(ops []WOp) error {
	recvs := make([]leg, 0, len(ops))
	sends := make([]leg, 0, len(ops))
	for peer, op := range ops {
		recvs = append(recvs, leg{peer: peer, tag: c.tag(tagData), buf: op.RecvBuf, l: op.RecvType, count: op.RecvCount})
		sends = append(sends, leg{peer: peer, tag: c.tag(tagData), buf: op.SendBuf, l: op.SendType, count: op.SendCount})
	}
	return c.exchangePhase(recvs, sends)
}

// alltoallwPairwise exchanges with one peer per step — rank i sends to
// (i+step) and receives from (i-step), the classic congestion-avoiding
// schedule; each step is its own fused phase.
func (c *call) alltoallwPairwise(ops []WOp) error {
	size := len(ops)
	id := c.rank()
	for step := 0; step < size; step++ {
		to := (id + step) % size
		from := (id - step + size) % size
		err := c.exchangePhase(
			[]leg{{peer: from, tag: c.tag(tagData), buf: ops[from].RecvBuf, l: ops[from].RecvType, count: ops[from].RecvCount}},
			[]leg{{peer: to, tag: c.tag(tagData), buf: ops[to].SendBuf, l: ops[to].SendType, count: ops[to].SendCount}},
		)
		if err != nil {
			return err
		}
	}
	return nil
}

// --- hierarchical two-level alltoallw ---
//
// Cross-node traffic is aggregated on the node leader: locals hand their
// remote-bound legs to the leader over NVLink (DirectIPC into a staging
// bundle), leaders exchange ONE bundle per node pair over IB, and each
// leader slices its incoming bundles back out to the local destinations.
// Same-node legs go direct. The fused-window structure is deadlock-safe
// by one rule: a window is always closed right after its posts (packs
// launch), and gates only ever wait for a peer's *envelope* (reaching
// Processing), never for work held in any open window.

// hierPlan is the leader's size bookkeeping, decoded from the size phase.
type hierPlan struct {
	out          [][]int64 // [localIdx][dst] bytes local sends to dst
	in           [][]int64 // [localIdx][src] bytes local expects from src
	outOff       map[[2]int]int64
	inOff        map[[2]int]int64
	bundleOutOff []int64
	bundleOutLen []int64
	bundleInOff  []int64
	bundleInLen  []int64
	totalOut     int64
	totalIn      int64
}

func (c *call) alltoallwHier(ops []WOp) error {
	e, r := c.e, c.r
	size := len(ops)
	id := r.ID()
	node := e.nodeOf(id)
	leader := e.leaderOf(node)
	locals := e.localRanks(node)
	gpn := e.gpusPerNode()

	// Every rank's own size vectors: out[dst], in[src].
	myOut := make([]int64, size)
	myIn := make([]int64, size)
	for i, op := range ops {
		myOut[i] = op.sendBytes()
		myIn[i] = op.recvBytes()
	}

	if id != leader {
		return c.hierLocal(ops, leader, locals, myOut, myIn)
	}

	// --- size phase: collect every local's vectors ---
	sizeBufs := make([]*gpu.Buffer, gpn)
	var sizeRecvs []*mpi.Request
	for li, lr := range locals {
		if lr == id {
			continue
		}
		sizeBufs[li] = c.staging("sizes", int64(2*size*8))
		q := c.bind(r.IrecvRaw(c.p, lr, c.tag(tagSizes), sizeBufs[li], c.bytesAt(0, int64(2*size*8)), 1))
		c.all = append(c.all, q)
		sizeRecvs = append(sizeRecvs, q)
	}
	if err := c.subsetWait(sizeRecvs); err != nil {
		return err
	}
	plan := &hierPlan{
		out:    make([][]int64, gpn),
		in:     make([][]int64, gpn),
		outOff: make(map[[2]int]int64),
		inOff:  make(map[[2]int]int64),
	}
	for li, lr := range locals {
		if lr == id {
			plan.out[li], plan.in[li] = myOut, myIn
			continue
		}
		out := make([]int64, size)
		in := make([]int64, size)
		// Size tables are control metadata, not payload: decode real bytes
		// regardless of payload mode.
		data := sizeBufs[li].Materialize()
		for i := 0; i < size; i++ {
			out[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
			in[i] = int64(binary.LittleEndian.Uint64(data[(size+i)*8:]))
		}
		plan.out[li], plan.in[li] = out, in
	}

	// --- staging layout: bundleOut per remote node is ordered
	// (srcLocal asc, dst asc); bundleIn mirrors the sender's ordering
	// (src asc, dstLocal asc) — identical because both iterate the
	// sending node's locals outer, receiving node's locals inner. ---
	nodes := e.nodes()
	plan.bundleOutOff = make([]int64, nodes)
	plan.bundleOutLen = make([]int64, nodes)
	plan.bundleInOff = make([]int64, nodes)
	plan.bundleInLen = make([]int64, nodes)
	for nd := 0; nd < nodes; nd++ {
		if nd == node {
			continue
		}
		plan.bundleOutOff[nd] = plan.totalOut
		for li, lr := range locals {
			_ = lr
			for _, dst := range e.localRanks(nd) {
				n := plan.out[li][dst]
				if n == 0 {
					continue
				}
				plan.outOff[[2]int{locals[li], dst}] = plan.totalOut
				plan.totalOut += n
			}
		}
		plan.bundleOutLen[nd] = plan.totalOut - plan.bundleOutOff[nd]

		plan.bundleInOff[nd] = plan.totalIn
		for _, src := range e.localRanks(nd) {
			for li := range locals {
				n := plan.in[li][src]
				if n == 0 {
					continue
				}
				plan.inOff[[2]int{src, locals[li]}] = plan.totalIn
				plan.totalIn += n
			}
		}
		plan.bundleInLen[nd] = plan.totalIn - plan.bundleInOff[nd]
	}
	stagingOut := c.staging("a2a-out", plan.totalOut)
	stagingIn := c.staging("a2a-in", plan.totalIn)

	// --- window A1: post everything outbound-facing; close launches the
	// fused pack kernel (own cross-leg packs + self-leg pack). ---
	if c.batch != nil {
		c.openWin()
	}
	var bundleRecvs, gatherRecvs []*mpi.Request
	for ns := 0; ns < nodes; ns++ {
		if n := plan.bundleInLen[ns]; n > 0 {
			q := c.bind(r.IrecvRaw(c.p, e.leaderOf(ns), c.tag(tagBundle), stagingIn, c.bytesAt(plan.bundleInOff[ns], n), 1))
			c.all = append(c.all, q)
			bundleRecvs = append(bundleRecvs, q)
		}
	}
	for li, lr := range locals {
		if lr == id {
			continue
		}
		for dst := 0; dst < size; dst++ {
			if e.nodeOf(dst) == node {
				continue
			}
			n := plan.out[li][dst]
			if n == 0 {
				continue
			}
			q := c.bind(r.IrecvRaw(c.p, lr, c.tag(tagGather), stagingOut, c.bytesAt(plan.outOff[[2]int{lr, dst}], n), 1))
			c.all = append(c.all, q)
			gatherRecvs = append(gatherRecvs, q)
		}
	}
	var packHs []mpi.Handle
	for dst := 0; dst < size; dst++ {
		if e.nodeOf(dst) == node || myOut[dst] == 0 {
			continue
		}
		e := r.LayoutEntry(ops[dst].SendType, ops[dst].SendCount)
		job := pack.NewJob(pack.OpPack, ops[dst].SendBuf, stagingOut, e.Blocks)
		job.Plan = e.Plan
		job.TargetOff = plan.outOff[[2]int{id, dst}]
		packHs = append(packHs, r.Scheme().Pack(c.p, job))
		c.bytes += myOut[dst]
	}
	directRecvs := c.postDirect(ops, locals)
	if c.batch != nil {
		c.closeWin()
		// --- window A2: the phase's inbound GPU work (gather IPC
		// scatters, direct unpacks, self unpack) fuses into one launch. ---
		c.openWin()
		c.gate(append(append([]*mpi.Request{}, gatherRecvs...), directRecvs...))
		c.closeWin()
	}
	if err := c.subsetWait(gatherRecvs); err != nil {
		return err
	}
	if err := c.waitHandles(packHs); err != nil {
		return err
	}

	// --- bundle phase: one contiguous message per remote node pair. ---
	for nd := 0; nd < nodes; nd++ {
		if n := plan.bundleOutLen[nd]; n > 0 {
			c.bytes += n
			c.all = append(c.all, c.bind(r.IsendRaw(c.p, e.leaderOf(nd), c.tag(tagBundle), stagingOut, c.bytesAt(plan.bundleOutOff[nd], n), 1)))
		}
	}
	if err := c.subsetWait(bundleRecvs); err != nil {
		return err
	}

	// --- window B: slice the incoming bundles back out (DirectIPC to
	// locals, fused direct unpacks for the leader's own legs). ---
	if c.batch != nil {
		c.openWin()
	}
	var unpackHs []mpi.Handle
	for src := 0; src < size; src++ {
		if e.nodeOf(src) == node {
			continue
		}
		for li, lr := range locals {
			n := plan.in[li][src]
			if n == 0 {
				continue
			}
			off := plan.inOff[[2]int{src, lr}]
			if lr == id {
				unpackHs = append(unpackHs, c.unpackJob(stagingIn, ops[src].RecvBuf, ops[src].RecvType, ops[src].RecvCount, off))
				continue
			}
			c.all = append(c.all, c.bind(r.IsendRaw(c.p, lr, c.tag(tagSlice), stagingIn, c.bytesAt(off, n), 1)))
		}
	}
	if c.batch != nil {
		c.closeWin()
	}
	return c.waitHandles(unpackHs)
}

// hierLocal is the non-leader side: hand cross-node legs to the leader,
// exchange direct legs, and receive forwarded slices.
func (c *call) hierLocal(ops []WOp, leader int, locals []int, myOut, myIn []int64) error {
	e, r := c.e, c.r
	size := len(ops)
	node := e.nodeOf(r.ID())

	// --- window A: every post this rank originates. Close right away so
	// the fused pack kernel (gather legs under no-IPC, self leg) launches
	// and nothing gated below depends on our own open window. ---
	if c.batch != nil {
		c.openWin()
	}
	sizeBuf := c.staging("sizes", int64(2*size*8))
	sizeData := sizeBuf.Materialize() // control metadata stays byte-exact
	for i := 0; i < size; i++ {
		binary.LittleEndian.PutUint64(sizeData[i*8:], uint64(myOut[i]))
		binary.LittleEndian.PutUint64(sizeData[(size+i)*8:], uint64(myIn[i]))
	}
	c.all = append(c.all, c.bind(r.IsendRaw(c.p, leader, c.tag(tagSizes), sizeBuf, c.bytesAt(0, int64(2*size*8)), 1)))
	for dst := 0; dst < size; dst++ {
		if e.nodeOf(dst) == node || myOut[dst] == 0 {
			continue
		}
		c.bytes += myOut[dst]
		c.all = append(c.all, c.bind(r.IsendRaw(c.p, leader, c.tag(tagGather), ops[dst].SendBuf, ops[dst].SendType, ops[dst].SendCount)))
	}
	var sliceRecvs []*mpi.Request
	for src := 0; src < size; src++ {
		if e.nodeOf(src) == node || myIn[src] == 0 {
			continue
		}
		q := c.bind(r.IrecvRaw(c.p, leader, c.tag(tagSlice), ops[src].RecvBuf, ops[src].RecvType, ops[src].RecvCount))
		c.all = append(c.all, q)
		sliceRecvs = append(sliceRecvs, q)
	}
	directRecvs := c.postDirect(ops, locals)
	if c.batch != nil {
		c.closeWin()
		// --- window B: all inbound GPU work (direct IPC scatters, self
		// unpack, slice unpacks) fuses into one launch once everything
		// has at least reached the scheme. ---
		c.openWin()
		c.gate(append(append([]*mpi.Request{}, directRecvs...), sliceRecvs...))
		c.closeWin()
	}
	return nil
}

// postDirect posts the same-node legs (peers in ascending rank order,
// self included via the loopback path) and returns the receives.
func (c *call) postDirect(ops []WOp, locals []int) []*mpi.Request {
	var recvs []*mpi.Request
	for _, peer := range locals {
		op := ops[peer]
		if op.recvBytes() > 0 {
			q := c.bind(c.r.IrecvRaw(c.p, peer, c.tag(tagDirect), op.RecvBuf, op.RecvType, op.RecvCount))
			c.all = append(c.all, q)
			recvs = append(recvs, q)
		}
	}
	for _, peer := range locals {
		op := ops[peer]
		if op.sendBytes() > 0 {
			c.bytes += op.sendBytes()
			c.all = append(c.all, c.bind(c.r.IsendRaw(c.p, peer, c.tag(tagDirect), op.SendBuf, op.SendType, op.SendCount)))
		}
	}
	return recvs
}

// validAlg rejects algorithms a collective doesn't implement.
func validAlg(kind string, alg Algorithm, allowed ...Algorithm) error {
	if alg == Auto {
		return nil
	}
	for _, a := range allowed {
		if alg == a {
			return nil
		}
	}
	return fmt.Errorf("coll: %s does not implement algorithm %q", kind, alg)
}
