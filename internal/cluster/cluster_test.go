package cluster

import (
	"testing"

	"repro/internal/sim"
)

func TestFigureOneArchsOrderedByGeneration(t *testing.T) {
	archs := FigureOneArchs()
	if len(archs) != 4 {
		t.Fatalf("want 4 generations, got %d", len(archs))
	}
	// Memory bandwidth and SM count strictly improve over generations.
	for i := 1; i < len(archs); i++ {
		if archs[i].MemBWBytesPerNs < archs[i-1].MemBWBytesPerNs {
			t.Errorf("%s slower HBM than %s", archs[i].Name, archs[i-1].Name)
		}
		if archs[i].SMCount < archs[i-1].SMCount {
			t.Errorf("%s fewer SMs than %s", archs[i].Name, archs[i-1].Name)
		}
	}
	// Launch overhead stays within the same order of magnitude: the
	// paper's point is it does NOT improve the way compute does.
	first, last := archs[0].LaunchOverheadNs, archs[len(archs)-1].LaunchOverheadNs
	if first >= 2*last {
		t.Errorf("launch overhead improved too much: %d -> %d", first, last)
	}
}

func TestLassenVsABCILinks(t *testing.T) {
	l, a := Lassen(), ABCI()
	if l.GPU.CPUGPULinkBWBytesPerNs <= a.GPU.CPUGPULinkBWBytesPerNs {
		t.Fatal("Lassen NVLink must beat ABCI PCIe for CPU-GPU transfers")
	}
	if l.GPUPeerBWBytesPerNs <= a.GPUPeerBWBytesPerNs {
		t.Fatal("Lassen NVLink2 GPU-GPU (75) must beat ABCI (50)")
	}
	if l.InterNode.BWBytesPerNs != a.InterNode.BWBytesPerNs {
		t.Fatal("both systems use IB EDR at 25 GB/s")
	}
	for _, s := range []Spec{l, a} {
		if s.Nodes != 2 || s.GPUsPerNode != 4 {
			t.Fatalf("%s: Table II says 4 V100 per node, eval uses 2 nodes", s.Name)
		}
		if !s.HasGdrCopy {
			t.Fatalf("%s: hybrid baseline requires GDRCopy", s.Name)
		}
	}
}

func TestBuildWiresEverything(t *testing.T) {
	env := sim.NewEnv()
	c := MustBuild(env, Lassen())
	if c.TotalGPUs() != 8 {
		t.Fatalf("total GPUs = %d, want 8", c.TotalGPUs())
	}
	seen := map[int]bool{}
	for n, devs := range c.Devices {
		for _, d := range devs {
			if d.Node != n {
				t.Fatalf("device %d on node %d reports node %d", d.ID, n, d.Node)
			}
			if seen[d.ID] {
				t.Fatalf("duplicate device id %d", d.ID)
			}
			seen[d.ID] = true
		}
	}
	if len(c.PeerLinks) != 2 {
		t.Fatalf("peer links = %d, want 2", len(c.PeerLinks))
	}
	// Network must connect the two nodes both ways.
	c.Net.LinkBetween(0, 1)
	c.Net.LinkBetween(1, 0)
}

func TestWithNodes(t *testing.T) {
	s := Lassen().WithNodes(4)
	if s.Nodes != 4 {
		t.Fatalf("WithNodes: %d", s.Nodes)
	}
	env := sim.NewEnv()
	c := MustBuild(env, s)
	if c.TotalGPUs() != 16 {
		t.Fatalf("total GPUs = %d", c.TotalGPUs())
	}
}

func TestBuildRejectsEmptySpec(t *testing.T) {
	if _, err := Build(sim.NewEnv(), Spec{}); err == nil {
		t.Fatal("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected MustBuild panic")
		}
	}()
	MustBuild(sim.NewEnv(), Spec{})
}

func TestLaunchDominatesPackOnAllGenerations(t *testing.T) {
	// Fig. 1's claim, checked against the cost model for the two paper
	// workload shapes (sparse specfem-like, dense MILC-like).
	env := sim.NewEnv()
	for _, arch := range FigureOneArchs() {
		d := MustBuild(env, Spec{
			Name: "t", Nodes: 1, GPUsPerNode: 1, GPU: arch,
			InterNode:           Lassen().InterNode,
			GPUPeerBWBytesPerNs: 50,
		}).Device(0, 0)
		sparse := d.EstimateKernelNs(96<<10, 4000, 24)
		dense := d.EstimateKernelNs(512<<10, 128, 4<<10)
		if arch.Name != "Tesla-K80" { // oldest generation is compute-bound
			if sparse >= arch.LaunchOverheadNs {
				t.Errorf("%s: sparse pack %dns >= launch %dns", arch.Name, sparse, arch.LaunchOverheadNs)
			}
			if dense >= arch.LaunchOverheadNs {
				t.Errorf("%s: dense pack %dns >= launch %dns", arch.Name, dense, arch.LaunchOverheadNs)
			}
		}
	}
}
