// Package cluster assembles simulated machines out of the gpu and fabric
// substrates. It provides the two evaluation systems of the paper's Table
// II — LLNL Lassen (POWER9 + V100 + NVLink2 + dual-rail IB EDR) and ABCI
// (Xeon + V100 + PCIe Gen3 + IB EDR) — plus the GPU generations used in the
// motivating Fig. 1.
//
// Parameter values are calibrated, not measured: they reproduce the
// relative magnitudes the paper reports (kernel launch ~5–10 µs, packing
// kernels ~1–5 µs, NVLink 75 GB/s vs PCIe 32 GB/s, IB EDR 25 GB/s,
// ~1 µs network latency).
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// --- GPU generations (Fig. 1) ---

// KeplerK80 models a Tesla K80: slow SMs, high launch overhead.
func KeplerK80() gpu.Arch {
	return gpu.Arch{
		Name:                   "Tesla-K80",
		LaunchOverheadNs:       9500,
		KernelStartupNs:        2600,
		SMCount:                13,
		MaxBlocksPerSM:         16,
		MemBWBytesPerNs:        240,
		BlockCopyBWBytesPerNs:  4,
		SegmentFixedNs:         520,
		EventRecordNs:          1500,
		EventQueryNs:           900,
		StreamSyncBaseNs:       1800,
		MemcpyAsyncOverheadNs:  5200,
		CopyEngineLatencyNs:    1900,
		CPUGPULinkBWBytesPerNs: 12, // PCIe Gen3 x16 shared
		GdrCopyLatencyNs:       600,
		GdrCopyBWBytesPerNs:    5,
		GdrSegmentFixedNs:      22,
	}
}

// PascalP100 models a Tesla P100 (PCIe).
func PascalP100() gpu.Arch {
	return gpu.Arch{
		Name:                   "Tesla-P100",
		LaunchOverheadNs:       7800,
		KernelStartupNs:        1700,
		SMCount:                56,
		MaxBlocksPerSM:         16,
		MemBWBytesPerNs:        720,
		BlockCopyBWBytesPerNs:  9,
		SegmentFixedNs:         260,
		EventRecordNs:          1100,
		EventQueryNs:           700,
		StreamSyncBaseNs:       1400,
		MemcpyAsyncOverheadNs:  4600,
		CopyEngineLatencyNs:    1500,
		CPUGPULinkBWBytesPerNs: 16,
		GdrCopyLatencyNs:       500,
		GdrCopyBWBytesPerNs:    6,
		GdrSegmentFixedNs:      16,
	}
}

// VoltaV100PCIe models a Tesla V100 behind PCIe Gen3 (the ABCI node).
func VoltaV100PCIe() gpu.Arch {
	a := voltaV100Common()
	a.Name = "Tesla-V100-PCIe"
	a.CPUGPULinkBWBytesPerNs = 32
	// PCIe round trips make driver interactions slightly costlier than
	// on POWER9+NVLink.
	a.LaunchOverheadNs = 7200
	a.MemcpyAsyncOverheadNs = 4600
	return a
}

// VoltaV100NVLink models a Tesla V100 on POWER9 NVLink2 (the Lassen node).
func VoltaV100NVLink() gpu.Arch {
	a := voltaV100Common()
	a.Name = "Tesla-V100-NVLink"
	a.CPUGPULinkBWBytesPerNs = 75
	a.LaunchOverheadNs = 6400
	a.MemcpyAsyncOverheadNs = 4100
	return a
}

func voltaV100Common() gpu.Arch {
	return gpu.Arch{
		KernelStartupNs:       1200,
		SMCount:               80,
		MaxBlocksPerSM:        16,
		MemBWBytesPerNs:       900,
		BlockCopyBWBytesPerNs: 12,
		SegmentFixedNs:        180,
		EventRecordNs:         900,
		EventQueryNs:          600,
		StreamSyncBaseNs:      1100,
		CopyEngineLatencyNs:   1300,
		GdrCopyLatencyNs:      400,
		GdrCopyBWBytesPerNs:   8,
		GdrSegmentFixedNs:     12,
	}
}

// FigureOneArchs returns the GPU generations swept in Fig. 1, oldest first.
func FigureOneArchs() []gpu.Arch {
	return []gpu.Arch{KeplerK80(), PascalP100(), VoltaV100PCIe(), VoltaV100NVLink()}
}

// --- systems (Table II) ---

// Spec describes a whole machine.
type Spec struct {
	Name        string
	Nodes       int
	GPUsPerNode int
	GPU         gpu.Arch
	// InterNode is the NIC-to-NIC link (IB EDR).
	InterNode fabric.LinkSpec
	// NICPostNs is the CPU cost of posting a work request.
	NICPostNs int64
	// GPUPeer is the intra-node GPU-GPU link (NVLink2), used by the
	// DirectIPC path.
	GPUPeerBWBytesPerNs float64
	GPUPeerLatencyNs    int64
	// HasGdrCopy reports whether the GDRCopy kernel module is loaded —
	// the CPU-GPU-Hybrid scheme needs it (paper Section V-B notes it
	// "may not be available in all HPC systems").
	HasGdrCopy bool
}

// Lassen is the LLNL Lassen system of Table II.
func Lassen() Spec {
	return Spec{
		Name:        "Lassen",
		Nodes:       2,
		GPUsPerNode: 4,
		GPU:         VoltaV100NVLink(),
		InterNode: fabric.LinkSpec{
			Name:         "IB-EDR-2rail",
			LatencyNs:    900,
			BWBytesPerNs: 25,
			PerMessageNs: 250,
		},
		NICPostNs:           200,
		GPUPeerBWBytesPerNs: 75,
		GPUPeerLatencyNs:    700,
		HasGdrCopy:          true,
	}
}

// ABCI is the AIST ABCI system of Table II.
func ABCI() Spec {
	return Spec{
		Name:        "ABCI",
		Nodes:       2,
		GPUsPerNode: 4,
		GPU:         VoltaV100PCIe(),
		InterNode: fabric.LinkSpec{
			Name:         "IB-EDR-2",
			LatencyNs:    1100,
			BWBytesPerNs: 25,
			PerMessageNs: 250,
		},
		NICPostNs:           260,
		GPUPeerBWBytesPerNs: 50,
		GPUPeerLatencyNs:    800,
		HasGdrCopy:          true,
	}
}

// WithNodes returns a copy of the spec scaled to n nodes.
func (s Spec) WithNodes(n int) Spec {
	s.Nodes = n
	return s
}

// Cluster is a built machine bound to a simulation environment.
type Cluster struct {
	Spec    Spec
	Env     *sim.Env
	Net     *fabric.Network
	Devices [][]*gpu.Device // [node][gpu]
	// PeerLinks[node] carries intra-node GPU peer traffic (shared per
	// node, directionless approximation).
	PeerLinks []*fabric.Link
}

// Validate reports an error for an unbuildable spec; configuration paths
// (dkf.NewSession) surface it instead of panicking.
func (s Spec) Validate() error {
	if s.Nodes <= 0 || s.GPUsPerNode <= 0 {
		return errors.New("cluster: need at least one node and one GPU")
	}
	if err := s.GPU.Check(); err != nil {
		return fmt.Errorf("cluster %s: %w", s.Name, err)
	}
	if err := s.InterNode.Validate(); err != nil {
		return fmt.Errorf("cluster %s: %w", s.Name, err)
	}
	if s.NICPostNs < 0 {
		return fmt.Errorf("cluster %s: negative NIC post cost", s.Name)
	}
	if s.GPUPeerBWBytesPerNs <= 0 {
		return fmt.Errorf("cluster %s: GPU peer bandwidth must be positive", s.Name)
	}
	if s.GPUPeerLatencyNs < 0 {
		return fmt.Errorf("cluster %s: negative GPU peer latency", s.Name)
	}
	return nil
}

// Build instantiates the machine on env, validating the spec first.
func Build(env *sim.Env, spec Spec) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	net, err := fabric.NewNetwork(env, fabric.NetworkSpec{
		Nodes:      spec.Nodes,
		Link:       spec.InterNode,
		PostCostNs: spec.NICPostNs,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{Spec: spec, Env: env, Net: net}
	id := 0
	for n := 0; n < spec.Nodes; n++ {
		var devs []*gpu.Device
		for g := 0; g < spec.GPUsPerNode; g++ {
			devs = append(devs, gpu.NewDevice(env, spec.GPU, id, n))
			id++
		}
		c.Devices = append(c.Devices, devs)
		peer, err := fabric.NewLink(env, fabric.LinkSpec{
			Name:         fmt.Sprintf("nvlink-peer[node%d]", n),
			LatencyNs:    spec.GPUPeerLatencyNs,
			BWBytesPerNs: spec.GPUPeerBWBytesPerNs,
			PerMessageNs: 120,
		})
		if err != nil {
			return nil, err
		}
		c.PeerLinks = append(c.PeerLinks, peer)
	}
	return c, nil
}

// MustBuild is Build for callers with known-good specs (benchmarks, tests);
// it panics on error.
func MustBuild(env *sim.Env, spec Spec) *Cluster {
	c, err := Build(env, spec)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// Device returns GPU g of node n.
func (c *Cluster) Device(n, g int) *gpu.Device { return c.Devices[n][g] }

// TotalGPUs reports the GPU count.
func (c *Cluster) TotalGPUs() int { return c.Spec.Nodes * c.Spec.GPUsPerNode }
