package payload

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzLazyChecksumAlgebra interprets the fuzz input as a little op program
// over a Content and a []byte shadow model, then requires the lazy and
// exact views to agree on bytes, checksum, and a range checksum. Ops are
// 6-byte records: opcode, two offsets, a length, and two payload bytes —
// all taken modulo the live content length so every input is valid.
func FuzzLazyChecksumAlgebra(f *testing.F) {
	f.Add([]byte{0, 10, 20, 30, 1, 2})
	f.Add([]byte{1, 0, 0, 255, 7, 7, 2, 5, 0, 100, 0, 0})
	f.Add([]byte{3, 0, 64, 64, 0, 0, 4, 32, 96, 32, 0, 0})
	f.Add(bytes.Repeat([]byte{1, 0, 0, 8, 9, 1}, 40))
	f.Fuzz(func(t *testing.T, program []byte) {
		const n = int64(257) // prime-ish, exercises block boundaries
		c := New(n)
		b := make([]byte, n)
		aux := New(n)
		ab := make([]byte, n)
		aux.Fill(99)
		FillBytes(ab, 99)

		for len(program) >= 6 {
			op := program[0]
			o1 := int64(program[1]) % n
			o2 := int64(program[2]) % n
			ln := int64(program[3])
			p1, p2 := program[4], program[5]
			program = program[6:]
			if ln > n-o1 {
				ln = n - o1
			}
			if ln > n-o2 {
				ln = n - o2
			}
			switch op % 7 {
			case 0: // write literal bytes
				lit := bytes.Repeat([]byte{p1 ^ p2}, int(ln))
				for i := range lit {
					lit[i] += byte(i)
				}
				c.WriteBytes(o1, lit)
				copy(b[o1:o1+ln], lit)
			case 1: // fill a range from a PRF stream
				seed := uint64(binary.LittleEndian.Uint16([]byte{p1, p2}))
				c.FillRange(o1, ln, seed, o2)
				StreamAt(seed, o2, b[o1:o1+ln])
			case 2: // zero a range
				c.Zero(o1, ln)
				for i := o1; i < o1+ln; i++ {
					b[i] = 0
				}
			case 3: // overlapping self-copy
				c.CopyFrom(o2, c, o1, ln)
				copy(b[o2:o2+ln], append([]byte(nil), b[o1:o1+ln]...))
			case 4: // cross-content copy from the aux stream
				c.CopyFrom(o1, aux, o2, ln)
				copy(b[o1:o1+ln], ab[o2:o2+ln])
			case 5: // slice snapshot law
				s := c.Slice(o1, ln)
				if s.Checksum() != Checksum(b[o1:o1+ln]) {
					t.Fatal("slice checksum diverges from model")
				}
			case 6: // concat law over two live slices
				s := Concat(c.Slice(o1, ln), aux.Slice(o2, ln))
				cat := append(append([]byte(nil), b[o1:o1+ln]...), ab[o2:o2+ln]...)
				if s.Checksum() != Checksum(cat) {
					t.Fatal("concat checksum diverges from model")
				}
			}
		}

		got := make([]byte, n)
		c.ReadAt(got, 0)
		if !bytes.Equal(got, b) {
			t.Fatal("lazy bytes diverge from exact model")
		}
		if c.Checksum() != Checksum(b) {
			t.Fatal("lazy checksum diverges from exact model")
		}
		if c.ChecksumRange(n/3, n/3) != Checksum(b[n/3:n/3+n/3]) {
			t.Fatal("lazy range checksum diverges from exact model")
		}
	})
}
