package payload

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// checkSpanInvariants asserts the structural health of a span list:
// sorted, non-overlapping, non-empty, inside [0, Len), literal lengths
// consistent, and fully coalesced (no two adjacent mergeable fill spans).
func checkSpanInvariants(t *testing.T, c *Content) {
	t.Helper()
	prevEnd := int64(0)
	for i, s := range c.spans {
		if s.n <= 0 {
			t.Fatalf("span %d: non-positive length %d", i, s.n)
		}
		if s.off < prevEnd {
			t.Fatalf("span %d: offset %d overlaps previous end %d", i, s.off, prevEnd)
		}
		if s.off+s.n > c.n {
			t.Fatalf("span %d: [%d,%d) exceeds content length %d", i, s.off, s.off+s.n, c.n)
		}
		if s.kind == srcLit && int64(len(s.lit)) != s.n {
			t.Fatalf("span %d: literal length %d != span length %d", i, len(s.lit), s.n)
		}
		if i > 0 && mergeable(c.spans[i-1], s) {
			t.Fatalf("span %d: mergeable neighbor survived coalescing", i)
		}
		prevEnd = s.off + s.n
	}
}

// FuzzLazyCorruptSplice drives the deterministic corrupt-splice primitive
// the reliability layer models in-flight corruption with: for any content
// built from a fill + literal-write program, a splice must (1) keep the
// span invariants, (2) keep the span checksum consistent with the
// materialized bytes, (3) always change the checksum — the CRC-reject
// guarantee — while touching exactly one byte, and (4) undo itself when
// applied twice with the same parameters (XOR involution).
func FuzzLazyCorruptSplice(f *testing.F) {
	f.Add(uint16(128), uint64(7), uint16(0), uint16(128), []byte{1, 2, 3})
	f.Add(uint16(257), uint64(0xdead), uint16(31), uint16(64), []byte{})
	f.Add(uint16(1), uint64(1), uint16(0), uint16(1), []byte{0xa5})
	f.Add(uint16(4096), uint64(42), uint16(1000), uint16(2048), bytes.Repeat([]byte{9}, 33))
	f.Fuzz(func(t *testing.T, size uint16, seed uint64, off, n uint16, lit []byte) {
		ln := int64(size)
		if ln == 0 {
			ln = 1
		}
		c := New(ln)
		c.Fill(seed ^ 0x9e37)
		if len(lit) > 0 {
			wo := int64(off) % ln
			w := lit
			if int64(len(w)) > ln-wo {
				w = w[:ln-wo]
			}
			c.WriteBytes(wo, w)
		}
		so := int64(off) % ln
		sn := int64(n) % (ln - so + 1)
		if sn == 0 {
			return // empty splice range is a no-op by contract
		}
		before := make([]byte, ln)
		c.ReadAt(before, 0)
		sumBefore := c.Checksum()
		if sumBefore != Checksum(before) {
			t.Fatal("pre-splice checksum diverges from materialized bytes")
		}

		c.CorruptSplice(so, sn, seed)
		checkSpanInvariants(t, c)
		after := make([]byte, ln)
		c.ReadAt(after, 0)
		sumAfter := c.Checksum()
		if sumAfter != Checksum(after) {
			t.Fatal("post-splice checksum diverges from materialized bytes")
		}
		if sumAfter == sumBefore {
			t.Fatal("corrupt splice left the checksum unchanged — CRC could not reject it")
		}
		diffs := 0
		for i := range before {
			if before[i] != after[i] {
				if int64(i) < so || int64(i) >= so+sn {
					t.Fatalf("splice touched byte %d outside [%d,%d)", i, so, so+sn)
				}
				diffs++
			}
		}
		if diffs != 1 {
			t.Fatalf("splice changed %d bytes, want exactly 1", diffs)
		}

		c.CorruptSplice(so, sn, seed)
		checkSpanInvariants(t, c)
		restored := make([]byte, ln)
		c.ReadAt(restored, 0)
		if !bytes.Equal(restored, before) || c.Checksum() != sumBefore {
			t.Fatal("double splice did not restore the original content")
		}
	})
}

// FuzzLazyChecksumAlgebra interprets the fuzz input as a little op program
// over a Content and a []byte shadow model, then requires the lazy and
// exact views to agree on bytes, checksum, and a range checksum. Ops are
// 6-byte records: opcode, two offsets, a length, and two payload bytes —
// all taken modulo the live content length so every input is valid.
func FuzzLazyChecksumAlgebra(f *testing.F) {
	f.Add([]byte{0, 10, 20, 30, 1, 2})
	f.Add([]byte{1, 0, 0, 255, 7, 7, 2, 5, 0, 100, 0, 0})
	f.Add([]byte{3, 0, 64, 64, 0, 0, 4, 32, 96, 32, 0, 0})
	f.Add(bytes.Repeat([]byte{1, 0, 0, 8, 9, 1}, 40))
	f.Fuzz(func(t *testing.T, program []byte) {
		const n = int64(257) // prime-ish, exercises block boundaries
		c := New(n)
		b := make([]byte, n)
		aux := New(n)
		ab := make([]byte, n)
		aux.Fill(99)
		FillBytes(ab, 99)

		for len(program) >= 6 {
			op := program[0]
			o1 := int64(program[1]) % n
			o2 := int64(program[2]) % n
			ln := int64(program[3])
			p1, p2 := program[4], program[5]
			program = program[6:]
			if ln > n-o1 {
				ln = n - o1
			}
			if ln > n-o2 {
				ln = n - o2
			}
			switch op % 7 {
			case 0: // write literal bytes
				lit := bytes.Repeat([]byte{p1 ^ p2}, int(ln))
				for i := range lit {
					lit[i] += byte(i)
				}
				c.WriteBytes(o1, lit)
				copy(b[o1:o1+ln], lit)
			case 1: // fill a range from a PRF stream
				seed := uint64(binary.LittleEndian.Uint16([]byte{p1, p2}))
				c.FillRange(o1, ln, seed, o2)
				StreamAt(seed, o2, b[o1:o1+ln])
			case 2: // zero a range
				c.Zero(o1, ln)
				for i := o1; i < o1+ln; i++ {
					b[i] = 0
				}
			case 3: // overlapping self-copy
				c.CopyFrom(o2, c, o1, ln)
				copy(b[o2:o2+ln], append([]byte(nil), b[o1:o1+ln]...))
			case 4: // cross-content copy from the aux stream
				c.CopyFrom(o1, aux, o2, ln)
				copy(b[o1:o1+ln], ab[o2:o2+ln])
			case 5: // slice snapshot law
				s := c.Slice(o1, ln)
				if s.Checksum() != Checksum(b[o1:o1+ln]) {
					t.Fatal("slice checksum diverges from model")
				}
			case 6: // concat law over two live slices
				s := Concat(c.Slice(o1, ln), aux.Slice(o2, ln))
				cat := append(append([]byte(nil), b[o1:o1+ln]...), ab[o2:o2+ln]...)
				if s.Checksum() != Checksum(cat) {
					t.Fatal("concat checksum diverges from model")
				}
			}
		}

		got := make([]byte, n)
		c.ReadAt(got, 0)
		if !bytes.Equal(got, b) {
			t.Fatal("lazy bytes diverge from exact model")
		}
		if c.Checksum() != Checksum(b) {
			t.Fatal("lazy checksum diverges from exact model")
		}
		if c.ChecksumRange(n/3, n/3) != Checksum(b[n/3:n/3+n/3]) {
			t.Fatal("lazy range checksum diverges from exact model")
		}
	})
}
