package payload

import (
	"bytes"
	"math/rand"
	"testing"
)

// model pairs a Content with a plain []byte shadow; every op is applied to
// both and the pair is checked byte-for-byte and checksum-for-checksum.
type model struct {
	c *Content
	b []byte
}

func newModel(n int64) *model { return &model{c: New(n), b: make([]byte, n)} }

func (m *model) check(t *testing.T, ctx string) {
	t.Helper()
	got := make([]byte, m.c.Len())
	m.c.ReadAt(got, 0)
	if !bytes.Equal(got, m.b) {
		t.Fatalf("%s: content bytes diverge from model", ctx)
	}
	if cs, want := m.c.Checksum(), Checksum(m.b); cs != want {
		t.Fatalf("%s: lazy checksum %#x != exact checksum %#x", ctx, cs, want)
	}
}

func TestFillMatchesFillBytes(t *testing.T) {
	for _, n := range []int64{0, 1, 7, 8, 9, 255, 256, 4096, 70000} {
		c := New(n)
		c.Fill(42)
		b := make([]byte, n)
		FillBytes(b, 42)
		got := make([]byte, n)
		c.ReadAt(got, 0)
		if !bytes.Equal(got, b) {
			t.Fatalf("n=%d: Fill and FillBytes disagree", n)
		}
		if c.Checksum() != Checksum(b) {
			t.Fatalf("n=%d: checksum mismatch", n)
		}
	}
}

func TestStreamAtIsPositionAddressable(t *testing.T) {
	whole := make([]byte, 1024)
	FillBytes(whole, 7)
	for _, off := range []int64{0, 1, 3, 7, 8, 9, 100, 511, 1000} {
		part := make([]byte, 24)
		StreamAt(7, off, part)
		if !bytes.Equal(part, whole[off:off+24]) {
			t.Fatalf("StreamAt(off=%d) disagrees with prefix fill", off)
		}
	}
}

func TestSeedDeterminismAndDistinctness(t *testing.T) {
	a, b, c := make([]byte, 256), make([]byte, 256), make([]byte, 256)
	FillBytes(a, 5)
	FillBytes(b, 5)
	FillBytes(c, 6)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must produce same bytes")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should produce different bytes")
	}
}

func TestZeroContentChecksum(t *testing.T) {
	for _, n := range []int64{0, 1, 13, 4096} {
		if New(n).Checksum() != Checksum(make([]byte, n)) {
			t.Fatalf("n=%d: zero content checksum mismatch", n)
		}
	}
}

func TestWriteReadCopyAgainstModel(t *testing.T) {
	const n = 2048
	m := newModel(n)
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 400; step++ {
		off := rng.Int63n(n)
		ln := rng.Int63n(n - off + 1)
		switch rng.Intn(5) {
		case 0:
			p := make([]byte, ln)
			rng.Read(p)
			m.c.WriteBytes(off, p)
			copy(m.b[off:off+ln], p)
		case 1:
			seed := rng.Uint64()
			pos := rng.Int63n(1 << 20)
			m.c.FillRange(off, ln, seed, pos)
			StreamAt(seed, pos, m.b[off:off+ln])
		case 2:
			m.c.Zero(off, ln)
			for i := off; i < off+ln; i++ {
				m.b[i] = 0
			}
		case 3: // self-copy, possibly overlapping
			dst := rng.Int63n(n - ln + 1)
			m.c.CopyFrom(dst, m.c, off, ln)
			copy(m.b[dst:dst+ln], append([]byte(nil), m.b[off:off+ln]...))
		case 4: // range checksum agreement
			if got, want := m.c.ChecksumRange(off, ln), Checksum(m.b[off:off+ln]); got != want {
				t.Fatalf("step %d: ChecksumRange(%d,%d) mismatch", step, off, ln)
			}
		}
	}
	m.check(t, "final")
}

// TestSliceLaw: Slice(off,n) of a content has the same bytes and checksum
// as the corresponding sub-slice of the materialized bytes, and is a
// snapshot — later writes to the source must not leak into it.
func TestSliceLaw(t *testing.T) {
	const n = 1024
	m := newModel(n)
	rng := rand.New(rand.NewSource(2))
	m.c.Fill(9)
	FillBytes(m.b, 9)
	p := make([]byte, 100)
	rng.Read(p)
	m.c.WriteBytes(300, p)
	copy(m.b[300:400], p)

	off, ln := int64(250), int64(500)
	s := m.c.Slice(off, ln)
	want := append([]byte(nil), m.b[off:off+ln]...)
	if s.Checksum() != Checksum(want) {
		t.Fatal("slice checksum != model sub-slice checksum")
	}
	// mutate the source; the snapshot must be unaffected
	m.c.Zero(0, n)
	got := make([]byte, ln)
	s.ReadAt(got, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("slice is not a snapshot: source mutation leaked in")
	}
}

// TestConcatLaw: Checksum(Concat(a,b)) == Checksum(bytes(a) ++ bytes(b)).
func TestConcatLaw(t *testing.T) {
	a, b := New(300), New(500)
	a.Fill(1)
	b.Fill(2)
	b.Zero(100, 50)
	ab := Concat(a, b)
	ba := make([]byte, 800)
	a.ReadAt(ba[:300], 0)
	b.ReadAt(ba[300:], 0)
	if ab.Len() != 800 || ab.Checksum() != Checksum(ba) {
		t.Fatal("concat law violated")
	}
}

// TestPackUnpackRoundTrip mimics the pack/unpack composition the MPI layer
// performs: gather strided blocks into a packed staging content, then
// scatter them back into a zeroed destination — covered bytes must round
// trip and the packed checksum must equal the packed model bytes.
func TestPackUnpackRoundTrip(t *testing.T) {
	const n = 4096
	src := New(n)
	src.Fill(77)
	sb := make([]byte, n)
	FillBytes(sb, 77)

	type block struct{ off, ln int64 }
	var blocks []block
	for off := int64(16); off+48 < n; off += 160 {
		blocks = append(blocks, block{off, 48})
	}
	var packedLen int64
	for _, bl := range blocks {
		packedLen += bl.ln
	}
	packed := New(packedLen)
	pb := make([]byte, packedLen)
	var w int64
	for _, bl := range blocks {
		packed.CopyFrom(w, src, bl.off, bl.ln)
		copy(pb[w:w+bl.ln], sb[bl.off:bl.off+bl.ln])
		w += bl.ln
	}
	if packed.Checksum() != Checksum(pb) {
		t.Fatal("packed checksum mismatch")
	}
	if packed.SpanCount() > len(blocks) {
		t.Fatalf("packed span count %d exceeds block count %d", packed.SpanCount(), len(blocks))
	}

	dst := New(n)
	db := make([]byte, n)
	w = 0
	for _, bl := range blocks {
		dst.CopyFrom(bl.off, packed, w, bl.ln)
		copy(db[bl.off:bl.off+bl.ln], pb[w:w+bl.ln])
		w += bl.ln
	}
	if dst.Checksum() != Checksum(db) {
		t.Fatal("unpacked checksum mismatch")
	}
	got := make([]byte, n)
	dst.ReadAt(got, 0)
	if !bytes.Equal(got, db) {
		t.Fatal("unpacked bytes mismatch")
	}
}

// TestCoalesceBoundsSpans: packing adjacent ranges of one fill stream must
// merge back into a single span, not accumulate per-copy fragments.
func TestCoalesceBoundsSpans(t *testing.T) {
	src := New(1 << 20)
	src.Fill(3)
	dst := New(1 << 20)
	var w int64
	for off := int64(0); off < 1<<20; off += 4096 {
		dst.CopyFrom(w, src, off, 4096)
		w += 4096
	}
	if got := dst.SpanCount(); got != 1 {
		t.Fatalf("contiguous stream copies should coalesce to 1 span, got %d", got)
	}
}

func TestHashZeros(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 3, 63, 64, 1000} {
		want := Checksum(make([]byte, n))
		if got := hashZeros(fnvOffset, n); got != want {
			t.Fatalf("hashZeros(%d) = %#x want %#x", n, got, want)
		}
	}
}

func TestRangePanics(t *testing.T) {
	c := New(10)
	for _, f := range []func(){
		func() { c.WriteBytes(8, make([]byte, 4)) },
		func() { c.ReadAt(make([]byte, 4), 8) },
		func() { c.Slice(-1, 2) },
		func() { c.ChecksumRange(0, 11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected out-of-range panic")
				}
			}()
			f()
		}()
	}
}
