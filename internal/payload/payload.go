// Package payload implements the lazy-bytes content algebra: a byte
// container represented as a sorted list of provenance spans (seeded PRF
// stream ranges, literal bytes, implicit zeros) instead of a real []byte.
//
// Copying, packing, unpacking, concatenating, and slicing lazy content are
// span-list manipulations — O(spans), independent of the byte count — which
// is what lets the simulator carry multi-gigabyte aggregate payloads across
// a 1024-rank cluster without ever allocating them. Correctness stays
// observable through an FNV-1a checksum computed by streaming the spans:
// for identical logical bytes it equals Checksum() over a real []byte, so a
// lazy run and a byte-exact run can be compared checksum-for-checksum.
//
// The stream source is a position-addressable PRF (splitmix64 per 8-byte
// block), NOT the sequential LCG of workload.FillPattern: a span copied to
// a new offset must still be able to materialize or hash any sub-range in
// O(1) seek time.
package payload

import (
	"fmt"
	"sort"
)

// --- position-addressable PRF stream ---

// prfWord returns 8 bytes of stream `seed` at block index blk (bytes
// [8*blk, 8*blk+8) of the stream), using the splitmix64 finalizer.
func prfWord(seed uint64, blk int64) uint64 {
	x := seed + (uint64(blk)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// StreamAt materializes bytes [pos, pos+len(p)) of stream `seed` into p.
func StreamAt(seed uint64, pos int64, p []byte) {
	for i := range p {
		at := pos + int64(i)
		w := prfWord(seed, at>>3)
		p[i] = byte(w >> (8 * uint(at&7)))
	}
}

// FillBytes fills p with the first len(p) bytes of stream `seed` — the
// byte-exact twin of Content.Fill, used so exact and lazy runs start from
// identical logical buffer contents.
func FillBytes(p []byte, seed uint64) { StreamAt(seed, 0, p) }

// --- FNV-1a 64 ---

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Checksum is FNV-1a 64 over real bytes; Content.Checksum matches it for
// identical logical content.
func Checksum(p []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

// hashZeros advances an FNV-1a state over n zero bytes in O(log n):
// hashing a zero byte multiplies the state by the prime, so n zeros
// multiply by prime^n.
func hashZeros(h uint64, n int64) uint64 {
	p := uint64(fnvPrime)
	for e := uint64(n); e > 0; e >>= 1 {
		if e&1 == 1 {
			h *= p
		}
		p *= p
	}
	return h
}

// --- spans ---

type srcKind uint8

const (
	srcFill srcKind = iota // bytes [pos, pos+n) of PRF stream `seed`
	srcLit                 // literal bytes (immutable once attached)
)

// span is one contiguous run of non-zero provenance inside a Content.
// Ranges not covered by any span read as zero.
type span struct {
	off  int64 // offset within the content
	n    int64 // length in bytes
	kind srcKind
	seed uint64 // srcFill
	pos  int64  // srcFill: stream position of the span's first byte
	lit  []byte // srcLit: len == n; never mutated in place
}

// trim returns the sub-span covering content range [a, b).
func (s span) trim(a, b int64) span {
	d := a - s.off
	t := span{off: a, n: b - a, kind: s.kind, seed: s.seed}
	if s.kind == srcFill {
		t.pos = s.pos + d
	} else {
		t.lit = s.lit[d : d+(b-a) : d+(b-a)]
	}
	return t
}

// mergeable reports whether b directly continues a (so the two can be one
// span). Literal spans are never merged: that would need a byte copy.
func mergeable(a, b span) bool {
	return a.kind == srcFill && b.kind == srcFill &&
		a.off+a.n == b.off && a.seed == b.seed && a.pos+a.n == b.pos
}

// --- Content ---

// Content is a fixed-length lazy byte container. The zero-span Content
// reads as all zeros.
type Content struct {
	n     int64
	spans []span
	// scratch is the reusable CopyFrom staging list (src spans must be
	// snapshotted before mutating the destination: self-copies alias).
	scratch []span
}

// New returns an all-zero Content of n bytes.
func New(n int64) *Content {
	if n < 0 {
		panic(fmt.Sprintf("payload: negative content length %d", n))
	}
	return &Content{n: n}
}

// Len returns the content length in bytes.
func (c *Content) Len() int64 { return c.n }

// SpanCount reports the current span-list length (for leak/blowup tests).
func (c *Content) SpanCount() int { return len(c.spans) }

func (c *Content) checkRange(op string, off, n int64) {
	if n < 0 || off < 0 || off+n > c.n {
		panic(fmt.Sprintf("payload: %s range [%d,%d) out of content [0,%d)", op, off, off+n, c.n))
	}
}

// firstOverlap returns the index of the first span whose end is past off.
func (c *Content) firstOverlap(off int64) int {
	return sort.Search(len(c.spans), func(i int) bool { return c.spans[i].off+c.spans[i].n > off })
}

// splice replaces coverage of [off, end) with add (sorted, within
// [off, end)), splitting boundary spans, then coalesces mergeable fill
// spans at the seams. The span list is shifted in place: no temporary
// slice proportional to the tail is ever allocated, so a copy into a
// bundle holding thousands of spans stays O(spans moved), not O(bytes
// allocated) — the operation sits on the simulator's hottest path.
func (c *Content) splice(off, end int64, add []span) {
	i := c.firstOverlap(off)
	var left, right span
	var hasLeft, hasRight bool
	j := i
	if i < len(c.spans) && c.spans[i].off < end {
		if c.spans[i].off < off {
			left = c.spans[i].trim(c.spans[i].off, off)
			hasLeft = true
		}
		for j < len(c.spans) && c.spans[j].off < end {
			j++
		}
		if last := c.spans[j-1]; last.off+last.n > end {
			right = last.trim(end, last.off+last.n)
			hasRight = true
		}
	}
	newLen := len(add)
	if hasLeft {
		newLen++
	}
	if hasRight {
		newLen++
	}
	oldLen := len(c.spans)
	if d := newLen - (j - i); d > 0 {
		c.spans = append(c.spans, make([]span, d)...)
		copy(c.spans[i+newLen:], c.spans[j:oldLen])
	} else if d < 0 {
		copy(c.spans[i+newLen:], c.spans[j:])
		c.spans = c.spans[:oldLen+d]
	}
	w := i
	if hasLeft {
		c.spans[w] = left
		w++
	}
	copy(c.spans[w:], add)
	w += len(add)
	if hasRight {
		c.spans[w] = right
	}
	c.coalesce(i, i+newLen)
}

// coalesce merges mergeable neighbors around spans [from, to).
func (c *Content) coalesce(from, to int) {
	lo := from - 1
	if lo < 0 {
		lo = 0
	}
	hi := to + 1
	if hi > len(c.spans) {
		hi = len(c.spans)
	}
	w := lo
	for i := lo; i < hi; i++ {
		if w > lo && mergeable(c.spans[w-1], c.spans[i]) {
			c.spans[w-1].n += c.spans[i].n
			continue
		}
		c.spans[w] = c.spans[i]
		w++
	}
	if w < hi {
		c.spans = append(c.spans[:w], c.spans[hi:]...)
	}
}

// Fill sets the whole content to bytes [0, Len) of PRF stream `seed`.
func (c *Content) Fill(seed uint64) {
	c.spans = c.spans[:0]
	if c.n > 0 {
		c.spans = append(c.spans, span{off: 0, n: c.n, kind: srcFill, seed: seed})
	}
}

// FillRange sets [off, off+n) to bytes [pos, pos+n) of stream `seed`.
func (c *Content) FillRange(off, n int64, seed uint64, pos int64) {
	c.checkRange("FillRange", off, n)
	if n == 0 {
		return
	}
	c.splice(off, off+n, []span{{off: off, n: n, kind: srcFill, seed: seed, pos: pos}})
}

// Zero clears [off, off+n) back to zero bytes.
func (c *Content) Zero(off, n int64) {
	c.checkRange("Zero", off, n)
	if n == 0 {
		return
	}
	c.splice(off, off+n, nil)
}

// WriteBytes copies p into the content at off (p is cloned: literal spans
// are immutable so snapshots and slices can alias them safely).
func (c *Content) WriteBytes(off int64, p []byte) {
	c.checkRange("WriteBytes", off, int64(len(p)))
	if len(p) == 0 {
		return
	}
	lit := append([]byte(nil), p...)
	end := off + int64(len(p))
	c.splice(off, end, []span{{off: off, n: int64(len(p)), kind: srcLit, lit: lit}})
}

// ReadAt materializes content range [off, off+len(p)) into p.
func (c *Content) ReadAt(p []byte, off int64) {
	n := int64(len(p))
	c.checkRange("ReadAt", off, n)
	if n == 0 {
		return
	}
	end := off + n
	pos := off
	for i := c.firstOverlap(off); i < len(c.spans) && c.spans[i].off < end; i++ {
		s := c.spans[i]
		a, b := s.off, s.off+s.n
		if a < off {
			a = off
		}
		if b > end {
			b = end
		}
		for k := pos; k < a; k++ {
			p[k-off] = 0
		}
		t := s.trim(a, b)
		if t.kind == srcFill {
			StreamAt(t.seed, t.pos, p[a-off:b-off])
		} else {
			copy(p[a-off:b-off], t.lit)
		}
		pos = b
	}
	for k := pos; k < end; k++ {
		p[k-off] = 0
	}
}

// CopyFrom copies n bytes of src starting at srcOff into c at dstOff —
// the core algebra op behind pack/unpack/concat. Self-copies (src == c)
// are allowed; overlapping ranges behave like memmove.
func (c *Content) CopyFrom(dstOff int64, src *Content, srcOff, n int64) {
	c.checkRange("CopyFrom dst", dstOff, n)
	src.checkRange("CopyFrom src", srcOff, n)
	if n == 0 {
		return
	}
	delta := dstOff - srcOff
	end := srcOff + n
	add := c.scratch[:0]
	for i := src.firstOverlap(srcOff); i < len(src.spans) && src.spans[i].off < end; i++ {
		s := src.spans[i]
		a, b := s.off, s.off+s.n
		if a < srcOff {
			a = srcOff
		}
		if b > end {
			b = end
		}
		t := s.trim(a, b)
		t.off += delta
		add = append(add, t)
	}
	c.splice(dstOff, dstOff+n, add)
	c.scratch = add[:0]
}

// Slice returns an immutable snapshot of content range [off, off+n) as a
// fresh Content of length n. O(spans in range); literal bytes are shared,
// never copied (they are immutable by construction).
func (c *Content) Slice(off, n int64) *Content {
	c.checkRange("Slice", off, n)
	out := New(n)
	out.CopyFrom(0, c, off, n)
	return out
}

// Concat returns a fresh Content holding a followed by b.
func Concat(a, b *Content) *Content {
	out := New(a.n + b.n)
	out.CopyFrom(0, a, 0, a.n)
	out.CopyFrom(a.n, b, 0, b.n)
	return out
}

// CorruptSplice deterministically damages range [off, off+n) in place —
// the span-algebra model of in-flight wire corruption. The byte at
// off + n/2 (the same index the byte-exact reliability layer flips) is
// XOR-ed with a non-zero mask drawn from PRF stream `seed` at that
// position and spliced back as a one-byte literal span. FNV-1a is a
// bijection per input byte, so a single-byte change always changes
// Checksum(): a spliced-corrupt payload can never slip past the
// receiver's CRC. Applying the same (off, n, seed) splice twice restores
// the original content exactly (XOR involution), which the fuzz target
// exploits.
func (c *Content) CorruptSplice(off, n int64, seed uint64) {
	c.checkRange("CorruptSplice", off, n)
	if n == 0 {
		return
	}
	pos := off + n/2
	var b, m [1]byte
	c.ReadAt(b[:], pos)
	StreamAt(seed, pos, m[:])
	if m[0] == 0 {
		m[0] = 0xa5
	}
	b[0] ^= m[0]
	c.WriteBytes(pos, b[:])
}

// Checksum returns the FNV-1a 64 hash of the full logical byte string,
// streamed from the spans without materializing the content. Zero gaps
// advance the hash in O(log gap).
func (c *Content) Checksum() uint64 { return c.ChecksumRange(0, c.n) }

// ChecksumRange hashes content range [off, off+n) the same way Checksum
// hashes the whole content.
func (c *Content) ChecksumRange(off, n int64) uint64 {
	c.checkRange("ChecksumRange", off, n)
	h := uint64(fnvOffset)
	end := off + n
	pos := off
	var buf [512]byte
	for i := c.firstOverlap(off); i < len(c.spans) && c.spans[i].off < end; i++ {
		s := c.spans[i]
		a, b := s.off, s.off+s.n
		if a < off {
			a = off
		}
		if b > end {
			b = end
		}
		h = hashZeros(h, a-pos)
		t := s.trim(a, b)
		if t.kind == srcLit {
			for _, v := range t.lit {
				h = (h ^ uint64(v)) * fnvPrime
			}
		} else {
			for w := int64(0); w < t.n; {
				k := t.n - w
				if k > int64(len(buf)) {
					k = int64(len(buf))
				}
				StreamAt(t.seed, t.pos+w, buf[:k])
				for _, v := range buf[:k] {
					h = (h ^ uint64(v)) * fnvPrime
				}
				w += k
			}
		}
		pos = b
	}
	return hashZeros(h, end-pos)
}
