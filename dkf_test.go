package dkf_test

import (
	"errors"
	"strings"
	"testing"

	dkf "repro"
)

func TestSessionQuickstartExchange(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{Scheme: "Proposed-Tuned"})
	if err != nil {
		t.Fatal(err)
	}
	if sess.NumRanks() != 8 {
		t.Fatalf("ranks = %d, want 8 (2 nodes x 4 GPUs)", sess.NumRanks())
	}
	l := dkf.Commit(dkf.Vector(64, 8, 16, dkf.Float64))
	sbuf := sess.Alloc(0, "s", int(l.ExtentBytes))
	rbuf := sess.Alloc(4, "r", int(l.ExtentBytes))
	dkf.FillPattern(sbuf.Data, 1)
	err = sess.Run(func(c *dkf.RankCtx) {
		switch c.ID() {
		case 0:
			c.Wait(c.Isend(4, 0, sbuf, l, 1))
		case 4:
			c.Wait(c.Irecv(0, 0, rbuf, l, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dkf.VerifyBlocks(l, 1, sbuf.Data, rbuf.Data); err != nil {
		t.Fatal(err)
	}
}

func TestSessionRejectsUnknownScheme(t *testing.T) {
	if _, err := dkf.NewSession(dkf.SessionConfig{Scheme: "bogus"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSessionAllSchemesAndSystems(t *testing.T) {
	l := dkf.Commit(dkf.Indexed([]int{1, 2, 1}, []int{0, 4, 9}, dkf.Float32))
	for _, sys := range []dkf.System{dkf.SystemLassen, dkf.SystemABCI} {
		for _, scheme := range dkf.SchemeNames() {
			sess, err := dkf.NewSession(dkf.SessionConfig{System: sys, Scheme: dkf.Scheme(scheme)})
			if err != nil {
				t.Fatal(err)
			}
			sbuf := sess.Alloc(0, "s", int(l.ExtentBytes))
			rbuf := sess.Alloc(4, "r", int(l.ExtentBytes))
			dkf.FillPattern(sbuf.Data, 9)
			err = sess.Run(func(c *dkf.RankCtx) {
				switch c.ID() {
				case 0:
					c.Wait(c.Isend(4, 0, sbuf, l, 1))
				case 4:
					c.Wait(c.Irecv(0, 0, rbuf, l, 1))
				}
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", sys, scheme, err)
			}
			if err := dkf.VerifyBlocks(l, 1, sbuf.Data, rbuf.Data); err != nil {
				t.Fatalf("%s/%s: %v", sys, scheme, err)
			}
		}
	}
}

func TestSessionDeadlockSurfaces(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Contiguous(8, dkf.Byte))
	rbuf := sess.Alloc(0, "r", int(l.ExtentBytes))
	err = sess.Run(func(c *dkf.RankCtx) {
		if c.ID() == 0 {
			c.Wait(c.Irecv(7, 0, rbuf, l, 1)) // nobody sends
		}
	})
	if err == nil {
		t.Fatal("Run returned nil despite deadlock")
	}
	var stall *dkf.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("Run error %T is not a *StallError: %v", err, err)
	}
	got := strings.ToLower(err.Error())
	if !strings.Contains(got, "stalled") || !strings.Contains(got, "rank0") {
		t.Fatalf("error %q should name the stalled rank", got)
	}
}

func TestSessionFusionThresholdOverride(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{Scheme: "Proposed", FusionThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Vector(100, 1, 3, dkf.Float32))
	sbuf := sess.Alloc(0, "s", int(l.ExtentBytes))
	rbuf := sess.Alloc(4, "r", int(l.ExtentBytes))
	err = sess.Run(func(c *dkf.RankCtx) {
		switch c.ID() {
		case 0:
			c.Wait(c.Isend(4, 0, sbuf, l, 1))
		case 4:
			c.Wait(c.Irecv(0, 0, rbuf, l, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// With a huge threshold, the only launches are explicit flushes.
	if sess.DeviceStats(0).FusedKernels != 1 {
		t.Fatalf("sender fused kernels = %d, want 1", sess.DeviceStats(0).FusedKernels)
	}
}

func TestTraceAndStatsExposed(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{Scheme: "GPU-Sync"})
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Vector(100, 1, 3, dkf.Float32))
	sbuf := sess.Alloc(0, "s", int(l.ExtentBytes))
	rbuf := sess.Alloc(4, "r", int(l.ExtentBytes))
	err = sess.Run(func(c *dkf.RankCtx) {
		switch c.ID() {
		case 0:
			c.Wait(c.Isend(4, 0, sbuf, l, 1))
		case 4:
			c.Wait(c.Irecv(0, 0, rbuf, l, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.TraceOf(0).Total() == 0 {
		t.Fatal("trace empty")
	}
	if sess.DeviceStats(0).KernelLaunches == 0 {
		t.Fatal("device stats empty")
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(dkf.Workloads()) != 4 {
		t.Fatal("want 4 workloads")
	}
	if _, ok := dkf.WorkloadByName("NAS_MG"); !ok {
		t.Fatal("NAS_MG missing")
	}
	if len(dkf.Figures()) != 12 {
		t.Fatal("want 12 figures (8 paper figures + coll + scale + chaos-scale + rma)")
	}
}

func TestRunFigureSmoke(t *testing.T) {
	tabs, err := dkf.RunFigure("1")
	if err != nil || len(tabs) == 0 {
		t.Fatalf("RunFigure(1): %v", err)
	}
	if !strings.Contains(tabs[0].String(), "launch") {
		t.Fatalf("fig 1 table: %s", tabs[0].String())
	}
	if _, err := dkf.RunFigure("99"); err == nil {
		t.Fatal("unknown figure must error")
	}
}

func TestHaloRing(t *testing.T) {
	// Every rank exchanges with its ring neighbors — mixes intra-node
	// (DirectIPC) and inter-node paths in one pattern.
	sess, err := dkf.NewSession(dkf.SessionConfig{Scheme: "Proposed-Tuned"})
	if err != nil {
		t.Fatal(err)
	}
	n := sess.NumRanks()
	l := dkf.Commit(dkf.Vector(32, 2, 5, dkf.Float64))
	sbufs := make([]*dkf.Buffer, n)
	rbufs := make([]*dkf.Buffer, n)
	for i := 0; i < n; i++ {
		sbufs[i] = sess.Alloc(i, "s", int(l.ExtentBytes))
		rbufs[i] = sess.Alloc(i, "r", int(l.ExtentBytes))
		dkf.FillPattern(sbufs[i].Data, uint64(i+1))
	}
	err = sess.Run(func(c *dkf.RankCtx) {
		right := (c.ID() + 1) % c.NumRanks()
		left := (c.ID() + c.NumRanks() - 1) % c.NumRanks()
		rq := c.Irecv(left, 0, rbufs[c.ID()], l, 1)
		sq := c.Isend(right, 0, sbufs[c.ID()], l, 1)
		c.Waitall([]*dkf.Request{rq, sq})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		left := (i + n - 1) % n
		if err := dkf.VerifyBlocks(l, 1, sbufs[left].Data, rbufs[i].Data); err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestFacadeCollectivesAndTopology(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{Scheme: "Proposed-Auto"})
	if err != nil {
		t.Fatal(err)
	}
	cart := sess.CartCreate([]int{2, 2, 2}, []bool{true, true, true})
	if cart.Size() != 8 {
		t.Fatalf("cart size = %d", cart.Size())
	}
	l := dkf.Commit(dkf.Contiguous(128, dkf.Float64))
	bufs := make([]*dkf.Buffer, 8)
	for i := range bufs {
		bufs[i] = sess.Alloc(i, "b", int(l.ExtentBytes))
	}
	dkf.FillPattern(bufs[3].Data, 3)
	err = sess.Run(func(c *dkf.RankCtx) {
		c.Bcast(3, bufs[c.ID()], l, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bufs {
		if err := dkf.VerifyBlocks(l, 1, bufs[3].Data, bufs[i].Data); err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestFacadeExplicitPackUnpack(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{Scheme: "GPU-Sync"})
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Vector(32, 1, 3, dkf.Float64))
	src := sess.Alloc(0, "s", int(l.ExtentBytes))
	dst := sess.Alloc(0, "d", int(l.ExtentBytes))
	staging := sess.Alloc(0, "p", int(l.SizeBytes))
	dkf.FillPattern(src.Data, 5)
	err = sess.Run(func(c *dkf.RankCtx) {
		if c.ID() != 0 {
			return
		}
		if c.PackSize(l, 1) != l.SizeBytes {
			t.Error("PackSize wrong")
		}
		var pos int64
		c.Pack(src, l, 1, staging, &pos)
		pos = 0
		c.Unpack(staging, &pos, dst, l, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dkf.VerifyBlocks(l, 1, src.Data, dst.Data); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeNeighborExchange(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Vector(64, 2, 5, dkf.Float32))
	n := sess.NumRanks()
	sb := make([]*dkf.Buffer, n)
	rb := make([]*dkf.Buffer, n)
	for i := 0; i < n; i++ {
		sb[i] = sess.Alloc(i, "s", int(l.ExtentBytes))
		rb[i] = sess.Alloc(i, "r", int(l.ExtentBytes))
		dkf.FillPattern(sb[i].Data, uint64(i+50))
	}
	err = sess.Run(func(c *dkf.RankCtx) {
		peer := c.ID() ^ 1
		c.NeighborExchange([]dkf.NeighborOp{{
			Peer:    peer,
			SendBuf: sb[c.ID()], SendType: l,
			RecvBuf: rb[c.ID()], RecvType: l,
		}})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := dkf.VerifyBlocks(l, 1, sb[i^1].Data, rb[i].Data); err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestFacadeExtendedWorkloads(t *testing.T) {
	if len(dkf.ExtendedWorkloads()) != 8 {
		t.Fatal("want 8 extended workloads")
	}
	// Resized spaces repeats.
	r := dkf.Resized(dkf.Contiguous(4, dkf.Byte), 16)
	l := dkf.Commit(r)
	if l.ExtentBytes != 16 || l.SizeBytes != 4 {
		t.Fatalf("resized layout: %+v", l)
	}
}

func TestFacadePipelineChunk(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{Scheme: "Proposed-Tuned", PipelineChunk: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Vector(4096, 16, 40, dkf.Float32)) // 256KB sparse
	sbuf := sess.Alloc(0, "s", int(l.ExtentBytes))
	rbuf := sess.Alloc(4, "r", int(l.ExtentBytes))
	dkf.FillPattern(sbuf.Data, 77)
	err = sess.Run(func(c *dkf.RankCtx) {
		switch c.ID() {
		case 0:
			c.Wait(c.Isend(4, 0, sbuf, l, 1))
		case 4:
			c.Wait(c.Irecv(0, 0, rbuf, l, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dkf.VerifyBlocks(l, 1, sbuf.Data, rbuf.Data); err != nil {
		t.Fatal(err)
	}
}
