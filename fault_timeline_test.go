package dkf_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	dkf "repro"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// chaosTrace runs a deterministic 2-rank inter-node exchange under a lossy
// fault plan with tracing enabled and returns the session plus its Chrome
// trace bytes.
func chaosTrace(t *testing.T) (*dkf.Session, []byte) {
	t.Helper()
	spec := dkf.SystemLassen.Spec()
	spec.Nodes = 2
	spec.GPUsPerNode = 1
	plan, err := dkf.FaultPreset("mixed", 2026)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dkf.NewSession(dkf.SessionConfig{
		CustomSpec: &spec,
		Scheme:     dkf.SchemeProposedTuned,
		Trace:      &dkf.TraceOptions{},
		Faults:     plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Vector(16, 32, 64, dkf.Float64))
	s0 := sess.Alloc(0, "s0", int(l.ExtentBytes))
	r0 := sess.Alloc(0, "r0", int(l.ExtentBytes))
	s1 := sess.Alloc(1, "s1", int(l.ExtentBytes))
	r1 := sess.Alloc(1, "r1", int(l.ExtentBytes))
	dkf.FillPattern(s0.Data, 1)
	dkf.FillPattern(s1.Data, 2)
	err = sess.Run(func(c *dkf.RankCtx) {
		peer := 1 - c.ID()
		sb, rb := s0, r0
		if c.ID() == 1 {
			sb, rb = s1, r1
		}
		if err := c.Waitall([]*dkf.Request{
			c.Irecv(peer, 0, rb, l, 1),
			c.Isend(peer, 0, sb, l, 1),
		}); err != nil {
			t.Errorf("rank %d: %v", c.ID(), err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := sess.Timeline().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	return sess, b.Bytes()
}

// TestFaultLayerReconciliation pins the recovery-cost bookkeeping: for every
// rank, the Retrans total in the cost breakdown equals the summed duration
// of fault-layer timeline spans exactly — every recovery charge is mirrored
// by exactly one timeline event, and only the fault layer carries Retrans
// cost.
func TestFaultLayerReconciliation(t *testing.T) {
	sess, _ := chaosTrace(t)
	tl := sess.Timeline()
	if len(sess.FaultEvents()) == 0 {
		t.Fatal("chaos run injected nothing — reconciliation not exercised")
	}
	var totalRetrans int64
	for rk := 0; rk < sess.NumRanks(); rk++ {
		rec := tl.Rank(rk)
		var faultSpanNs int64
		for _, e := range rec.Events() {
			if e.Cost == trace.Retrans {
				if e.Layer != timeline.LayerFault {
					t.Errorf("rank %d: Retrans-cost event %q on layer %s, want fault", rk, e.Name, e.Layer)
				}
				faultSpanNs += e.Dur
			} else if e.Layer == timeline.LayerFault && e.Dur > 0 {
				t.Errorf("rank %d: fault-layer span %q carries cost %s, want Retrans", rk, e.Name, e.Cost)
			}
		}
		if bd := sess.TraceOf(rk).Get(trace.Retrans); bd != faultSpanNs {
			t.Errorf("rank %d: Breakdown[Retrans]=%dns but fault-layer spans sum to %dns", rk, bd, faultSpanNs)
		}
		// The full per-category reconciliation must also hold under chaos.
		sums := rec.Sums()
		bd := sess.TraceOf(rk)
		if sums.String() != bd.String() {
			t.Errorf("rank %d: timeline sums != breakdown under faults\n  timeline:  %s\n  breakdown: %s", rk, sums, bd)
		}
		totalRetrans += faultSpanNs
	}
	if totalRetrans == 0 {
		t.Fatal("no Retrans cost recorded despite injected faults")
	}
}

// TestGoldenChaosTrace pins the Chrome trace of the chaos exchange
// byte-for-byte: fault injection is part of the deterministic simulation,
// so recovery timings replay exactly. Refresh with
// UPDATE_GOLDEN=1 go test -run TestGoldenChaosTrace.
func TestGoldenChaosTrace(t *testing.T) {
	_, got := chaosTrace(t)
	_, again := chaosTrace(t)
	if !bytes.Equal(got, again) {
		t.Fatal("chaos trace not byte-identical across two runs")
	}
	golden := filepath.Join("testdata", "golden_chaos_trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos trace differs from golden %s (len got=%d want=%d); rerun with UPDATE_GOLDEN=1 if intended",
			golden, len(got), len(want))
	}
}

// TestChaosTraceHasFaultLayer checks the machine view: the Chrome export of
// a chaos run contains events from the fault layer alongside the four
// fault-free layers.
func TestChaosTraceHasFaultLayer(t *testing.T) {
	_, raw := chaosTrace(t)
	var cf struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &cf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	layers := map[string]bool{}
	for _, e := range cf.TraceEvents {
		if e.Cat != "" {
			layers[e.Cat] = true
		}
	}
	for _, want := range []string{"sim", "gpu", "mpi", "fusion", "fault"} {
		if !layers[want] {
			t.Errorf("no events from layer %q (got %v)", want, layers)
		}
	}
}

// TestFaultFreeGoldenUnchanged re-runs the fault-free golden halo trace next
// to a chaos session in the same process: injector state must never bleed
// between worlds, and a faults-off session must keep producing the
// committed golden bytes.
func TestFaultFreeGoldenUnchanged(t *testing.T) {
	chaosTrace(t)
	_, got := haloTrace(t)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_halo2rank_trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fault-free trace changed after a chaos session ran in-process")
	}
}
