// milc drives the paper's dense Lattice-QCD workload: su3 matrix faces of
// a 4D lattice exchanged between two nodes with every DDT scheme, printing
// the per-scheme latency and the winner — the Fig. 10 story (the hybrid
// scheme wins tiny dense messages, fusion wins at scale) in one program.
//
//	go run ./examples/milc
package main

import (
	"fmt"
	"log"

	dkf "repro"
)

func exchange(scheme string, dim, buffers int) (int64, error) {
	sess, err := dkf.NewSession(dkf.SessionConfig{Scheme: dkf.Scheme(scheme)})
	if err != nil {
		return 0, err
	}
	wl, _ := dkf.WorkloadByName("MILC")
	l := wl.Layout(dim)

	const a, b = 0, 4
	type pair struct{ s, r *dkf.Buffer }
	mk := func(rank int) []pair {
		ps := make([]pair, buffers)
		for i := range ps {
			ps[i].s = sess.Alloc(rank, "s", int(l.ExtentBytes))
			ps[i].r = sess.Alloc(rank, "r", int(l.ExtentBytes))
			dkf.FillPattern(ps[i].s.Data, uint64(rank*100+i))
		}
		return ps
	}
	pa, pb := mk(a), mk(b)

	var lat int64
	err = sess.Run(func(c *dkf.RankCtx) {
		var mine []pair
		var peer int
		switch c.ID() {
		case a:
			mine, peer = pa, b
		case b:
			mine, peer = pb, a
		default:
			return
		}
		t0 := c.Now()
		var reqs []*dkf.Request
		for i := 0; i < buffers; i++ {
			reqs = append(reqs, c.Irecv(peer, i, mine[i].r, l, 1))
		}
		for i := 0; i < buffers; i++ {
			reqs = append(reqs, c.Isend(peer, i, mine[i].s, l, 1))
		}
		c.Waitall(reqs)
		if c.ID() == a {
			lat = c.Now() - t0
		}
	})
	if err != nil {
		return 0, err
	}
	for i := 0; i < buffers; i++ {
		if err := dkf.VerifyBlocks(l, 1, pa[i].s.Data, pb[i].r.Data); err != nil {
			return 0, err
		}
		if err := dkf.VerifyBlocks(l, 1, pb[i].s.Data, pa[i].r.Data); err != nil {
			return 0, err
		}
	}
	return lat, nil
}

func main() {
	wl, _ := dkf.WorkloadByName("MILC")
	schemesList := []string{"GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed-Tuned"}
	for _, cfg := range []struct {
		dim, buffers int
		label        string
	}{
		{8, 1, "single small dense message"},
		{8, 16, "bulk of 16 small dense messages"},
		{24, 16, "bulk of 16 larger dense messages"},
	} {
		l := wl.Layout(cfg.dim)
		fmt.Printf("MILC su3 zdown, dim=%d (%d blocks, %.1f KB/message), %s:\n",
			cfg.dim, l.NumBlocks(), float64(l.SizeBytes)/1024, cfg.label)
		best, bestLat := "", int64(0)
		for _, s := range schemesList {
			lat, err := exchange(s, cfg.dim, cfg.buffers)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s %8.1f us\n", s, float64(lat)/1000)
			if bestLat == 0 || lat < bestLat {
				best, bestLat = s, lat
			}
		}
		fmt.Printf("  winner: %s\n\n", best)
	}
}
