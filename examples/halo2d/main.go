// halo2d reproduces the paper's Fig. 3 scenario: a 2D domain decomposition
// across four GPUs where each GPU exchanges non-contiguous column
// boundaries and contiguous row boundaries with its neighbors, comparing
// the proposed fusion scheme against GPU-Sync.
//
//	go run ./examples/halo2d
package main

import (
	"fmt"
	"log"

	dkf "repro"
)

const (
	n     = 512 // local grid is n x n doubles
	steps = 4
)

// The four GPUs form a 2x2 grid: rank = row*2 + col, all on node 0 so the
// exchange exercises the intra-node DirectIPC path as well.
func right(r int) int { return r ^ 1 }
func below(r int) int { return r ^ 2 }

func run(scheme string) (int64, error) {
	sess, err := dkf.NewSession(dkf.SessionConfig{Scheme: dkf.Scheme(scheme)})
	if err != nil {
		return 0, err
	}
	// Column boundary: n blocks of 1 double, stride n. Row boundary: one
	// contiguous block of n doubles.
	col := dkf.Commit(dkf.Vector(n, 1, n, dkf.Float64))
	row := dkf.Commit(dkf.Contiguous(n, dkf.Float64))

	grids := make([]*dkf.Buffer, 4)
	colHalos := make([]*dkf.Buffer, 4)
	rowHalos := make([]*dkf.Buffer, 4)
	for r := 0; r < 4; r++ {
		grids[r] = sess.Alloc(r, "grid", n*n*8)
		colHalos[r] = sess.Alloc(r, "halo-col", n*n*8)
		rowHalos[r] = sess.Alloc(r, "halo-row", n*8)
		dkf.FillPattern(grids[r].Data, uint64(100+r))
	}

	var total int64
	err = sess.Run(func(c *dkf.RankCtx) {
		if c.ID() >= 4 {
			for s := 0; s < steps; s++ {
				c.Barrier()
				c.Barrier()
			}
			return
		}
		me := c.ID()
		for s := 0; s < steps; s++ {
			c.Barrier()
			t0 := c.Now()
			reqs := []*dkf.Request{
				// Column exchange with the horizontal neighbor.
				c.Irecv(right(me), 1, colHalos[me], col, 1),
				c.Isend(right(me), 1, grids[me], col, 1),
				// Row exchange with the vertical neighbor.
				c.Irecv(below(me), 2, rowHalos[me], row, 1),
				c.Isend(below(me), 2, grids[me], row, 1),
			}
			c.Waitall(reqs)
			c.Barrier()
			if me == 0 {
				total += c.Now() - t0
			}
		}
	})
	if err != nil {
		return 0, err
	}
	// Verify rank 0's halo against its neighbors' grids.
	if err := dkf.VerifyBlocks(col, 1, grids[right(0)].Data, colHalos[0].Data); err != nil {
		return 0, fmt.Errorf("column halo: %w", err)
	}
	if err := dkf.VerifyBlocks(row, 1, grids[below(0)].Data, rowHalos[0].Data); err != nil {
		return 0, fmt.Errorf("row halo: %w", err)
	}
	return total / steps, nil
}

func main() {
	fmt.Printf("2D halo exchange on 4 GPUs (one node), %dx%d doubles per rank\n\n", n, n)
	var base int64
	for _, scheme := range []string{"GPU-Sync", "Proposed-Tuned"} {
		avg, err := run(scheme)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = avg
		}
		fmt.Printf("%-16s avg exchange = %8.1f us   speedup = %.2fx\n",
			scheme, float64(avg)/1000, float64(base)/float64(avg))
	}
	fmt.Println("\nhalos verified against neighbor grids on every run")
}
