// Quickstart: two GPUs on different nodes exchange a strided (vector)
// buffer through the proposed dynamic-kernel-fusion scheme, and the
// program verifies every received byte.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dkf "repro"
)

func main() {
	// A Lassen-like cluster: 2 nodes x 4 V100s, one MPI rank per GPU.
	sess, err := dkf.NewSession(dkf.SessionConfig{
		System: dkf.SystemLassen,
		Scheme: "Proposed-Tuned",
	})
	if err != nil {
		log.Fatal(err)
	}

	// A column of a 256x256 double matrix: 256 blocks of one element,
	// stride 256 — the classic non-contiguous halo boundary (Fig. 3).
	column := dkf.Commit(dkf.Vector(256, 1, 256, dkf.Float64))
	fmt.Printf("datatype: %s\n  blocks=%d payload=%dB extent=%dB\n",
		column.Name, column.NumBlocks(), column.SizeBytes, column.ExtentBytes)

	const sender, receiver = 0, 4 // node 0 GPU 0 -> node 1 GPU 0
	sbuf := sess.Alloc(sender, "matrix", int(column.ExtentBytes))
	rbuf := sess.Alloc(receiver, "matrix", int(column.ExtentBytes))
	dkf.FillPattern(sbuf.Data, 2026)

	err = sess.Run(func(c *dkf.RankCtx) {
		switch c.ID() {
		case sender:
			req := c.Isend(receiver, 0, sbuf, column, 1)
			c.Wait(req)
			fmt.Printf("rank %d: column sent at t=%dns (simulated)\n", c.ID(), c.Now())
		case receiver:
			req := c.Irecv(sender, 0, rbuf, column, 1)
			c.Wait(req)
			fmt.Printf("rank %d: column received at t=%dns (simulated)\n", c.ID(), c.Now())
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := dkf.VerifyBlocks(column, 1, sbuf.Data, rbuf.Data); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verification: all column elements arrived intact")
	fmt.Printf("sender GPU: %d kernel launch(es), %d of them fused\n",
		sess.DeviceStats(sender).KernelLaunches, sess.DeviceStats(sender).FusedKernels)
}
