// specfem drives the paper's sparse Geophysics workload (specfem3D_cm:
// struct-on-indexed, thousands of tiny blocks) and illustrates the fusion
// threshold's under-fused / over-fused regimes from Fig. 8 by running the
// same bulk exchange at several thresholds.
//
//	go run ./examples/specfem
package main

import (
	"fmt"
	"log"

	dkf "repro"
)

const (
	dim     = 32
	buffers = 16
)

func runAt(threshold int64) (int64, int64, error) {
	sess, err := dkf.NewSession(dkf.SessionConfig{
		Scheme:          "Proposed",
		FusionThreshold: threshold,
	})
	if err != nil {
		return 0, 0, err
	}
	wl, _ := dkf.WorkloadByName("specfem3D_cm")
	l := wl.Layout(dim)

	const a, b = 0, 4
	sa := make([]*dkf.Buffer, buffers)
	rb := make([]*dkf.Buffer, buffers)
	for i := range sa {
		sa[i] = sess.Alloc(a, "s", int(l.ExtentBytes))
		rb[i] = sess.Alloc(b, "r", int(l.ExtentBytes))
		dkf.FillPattern(sa[i].Data, uint64(i+7))
	}
	var lat int64
	err = sess.Run(func(c *dkf.RankCtx) {
		switch c.ID() {
		case a:
			t0 := c.Now()
			var reqs []*dkf.Request
			for i := 0; i < buffers; i++ {
				reqs = append(reqs, c.Isend(b, i, sa[i], l, 1))
			}
			c.Waitall(reqs)
			lat = c.Now() - t0
		case b:
			var reqs []*dkf.Request
			for i := 0; i < buffers; i++ {
				reqs = append(reqs, c.Irecv(a, i, rb[i], l, 1))
			}
			c.Waitall(reqs)
		}
	})
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < buffers; i++ {
		if err := dkf.VerifyBlocks(l, 1, sa[i].Data, rb[i].Data); err != nil {
			return 0, 0, err
		}
	}
	return lat, sess.DeviceStats(a).KernelLaunches, nil
}

func main() {
	wl, _ := dkf.WorkloadByName("specfem3D_cm")
	l := wl.Layout(dim)
	fmt.Printf("specfem3D_cm dim=%d: %d blocks of avg %d bytes, %.1f KB/message, %d messages\n\n",
		dim, l.NumBlocks(), l.SizeBytes/int64(l.NumBlocks()), float64(l.SizeBytes)/1024, buffers)
	fmt.Printf("%-12s %-12s %-14s\n", "threshold", "latency_us", "sender_launches")
	for _, th := range []int64{8 << 10, 64 << 10, 512 << 10, 16 << 20} {
		lat, launches, err := runAt(th)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%dKB", th>>10)
		if th >= 1<<20 {
			label = fmt.Sprintf("%dMB", th>>20)
		}
		fmt.Printf("%-12s %-12.1f %-14d\n", label, float64(lat)/1000, launches)
	}
	fmt.Println("\nlow thresholds launch many small fused kernels (under-fused);")
	fmt.Println("huge thresholds delay all packing to the Waitall flush (over-fused).")
}
