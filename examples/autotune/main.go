// autotune demonstrates the model-based fusion-threshold prediction and
// online tuning (the paper's Section VII future work, implemented as the
// "Proposed-Auto" scheme): the same bulk sparse exchange is run with a
// deliberately bad fixed threshold, the hand-tuned 512 KiB one, and the
// auto-tuned scheme, which should land at or near the tuned result without
// anyone picking a number.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	dkf "repro"
)

const (
	dim     = 32
	buffers = 16
	rounds  = 6 // repeated exchanges give the online tuner traffic to learn from
)

func run(scheme string, threshold int64) (int64, error) {
	sess, err := dkf.NewSession(dkf.SessionConfig{
		Scheme:          dkf.Scheme(scheme),
		FusionThreshold: threshold,
	})
	if err != nil {
		return 0, err
	}
	wl, _ := dkf.WorkloadByName("specfem3D_cm")
	l := wl.Layout(dim)
	const a, b = 0, 4
	type pair struct{ s, r *dkf.Buffer }
	mk := func(rank int) []pair {
		ps := make([]pair, buffers)
		for i := range ps {
			ps[i].s = sess.Alloc(rank, "s", int(l.ExtentBytes))
			ps[i].r = sess.Alloc(rank, "r", int(l.ExtentBytes))
			dkf.FillPattern(ps[i].s.Data, uint64(rank+i))
		}
		return ps
	}
	pa, pb := mk(a), mk(b)
	var last int64
	err = sess.Run(func(c *dkf.RankCtx) {
		var mine []pair
		var peer int
		switch c.ID() {
		case a:
			mine, peer = pa, b
		case b:
			mine, peer = pb, a
		default:
			return
		}
		for round := 0; round < rounds; round++ {
			t0 := c.Now()
			var reqs []*dkf.Request
			for i := range mine {
				reqs = append(reqs, c.Irecv(peer, i, mine[i].r, l, 1))
			}
			for i := range mine {
				reqs = append(reqs, c.Isend(peer, i, mine[i].s, l, 1))
			}
			c.Waitall(reqs)
			if c.ID() == a {
				last = c.Now() - t0
			}
		}
	})
	if err != nil {
		return 0, err
	}
	for i := range pa {
		if err := dkf.VerifyBlocks(l, 1, pa[i].s.Data, pb[i].r.Data); err != nil {
			return 0, err
		}
	}
	return last, nil
}

func main() {
	wl, _ := dkf.WorkloadByName("specfem3D_cm")
	l := wl.Layout(dim)
	fmt.Printf("specfem3D_cm dim=%d (%d blocks, %.1f KB/message), %d buffers, %d rounds\n\n",
		dim, l.NumBlocks(), float64(l.SizeBytes)/1024, buffers, rounds)
	cases := []struct {
		label     string
		scheme    string
		threshold int64
	}{
		{"fixed 16KB (bad: under-fused)", "Proposed", 16 << 10},
		{"fixed 512KB (hand-tuned)", "Proposed-Tuned", 0},
		{"model + online tuner (auto)", "Proposed-Auto", 0},
	}
	for _, cse := range cases {
		lat, err := run(cse.scheme, cse.threshold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s final-round latency %8.1f us\n", cse.label, float64(lat)/1000)
	}
	fmt.Println("\nthe auto-tuned scheme needs no per-system threshold search (paper Fig. 8)")
}
