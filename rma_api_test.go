package dkf_test

import (
	"errors"
	"fmt"
	"testing"

	dkf "repro"
)

// TestRMAVerbs drives the facade's one-sided surface end to end: window
// rendezvous, put/get/put-signal, signal waits, and quiet, with the
// payload checked byte-exactly.
func TestRMAVerbs(t *testing.T) {
	spec := dkf.SystemLassen.Spec()
	spec.Nodes, spec.GPUsPerNode = 2, 2
	sess, err := dkf.NewSession(dkf.SessionConfig{CustomSpec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	n := sess.NumRanks()
	const chunk = 2048
	srcs := make([]*dkf.Buffer, n)
	gots := make([]*dkf.Buffer, n)
	for r := 0; r < n; r++ {
		srcs[r] = sess.Alloc(r, "src", chunk)
		gots[r] = sess.Alloc(r, "got", chunk)
		dkf.FillPattern(srcs[r].Data, uint64(r+1))
	}
	err = sess.Run(func(c *dkf.RankCtx) {
		id := c.ID()
		win, err := c.Window("w", 2*chunk)
		if err != nil {
			t.Errorf("rank %d window: %v", id, err)
			return
		}
		sig, err := c.OpenSignal("s", 1)
		if err != nil {
			t.Errorf("rank %d signal: %v", id, err)
			return
		}
		right := (id + 1) % c.NumRanks()
		// Signalled put into the right neighbor's lower half.
		if err := c.PutSignal(win, right, 0, srcs[id], 0, chunk, sig, 0, 1); err != nil {
			t.Errorf("rank %d put: %v", id, err)
		}
		c.WaitSignal(sig, 0, 1)
		// Read our own deposit back out with a get (loop through self).
		if err := c.Get(win, id, 0, gots[id], 0, chunk); err != nil {
			t.Errorf("rank %d get: %v", id, err)
		}
		if err := c.Quiet(); err != nil {
			t.Errorf("rank %d quiet: %v", id, err)
		}
		c.Barrier()
		c.CloseSignal(sig)
		if err := c.CloseWindow(win); err != nil {
			t.Errorf("rank %d close window: %v", id, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		left := (r - 1 + n) % n
		want := make([]byte, chunk)
		dkf.FillPattern(want, uint64(left+1))
		for i := range want {
			if gots[r].Data[i] != want[i] {
				t.Fatalf("rank %d byte %d: got %#x want %#x", r, i, gots[r].Data[i], want[i])
			}
		}
	}
	st := sess.RMAStats()
	if st.Puts == 0 || st.Gets == 0 || st.Doorbells == 0 {
		t.Fatalf("one-sided stats not counting: %+v", st)
	}
}

// TestRMABackendCollectives: BackendRMA sessions default Allgatherv and
// Alltoallw to the put-based one-sided ring, byte-exact against a P2P
// session on the same inputs.
func TestRMABackendCollectives(t *testing.T) {
	l := dkf.Commit(dkf.Vector(8, 4, 8, dkf.Float64))
	run := func(backend dkf.Backend) ([]*dkf.Buffer, dkf.RMAStats) {
		spec := dkf.SystemLassen.Spec()
		spec.Nodes, spec.GPUsPerNode = 2, 2
		sess, err := dkf.NewSession(dkf.SessionConfig{CustomSpec: &spec, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		n := sess.NumRanks()
		sends := make([]dkf.VOp, n)
		recvs := make([][]dkf.VOp, n)
		var flat []*dkf.Buffer
		for r := 0; r < n; r++ {
			sb := sess.Alloc(r, "ag-s", int(l.ExtentBytes))
			dkf.FillPattern(sb.Data, uint64(100+r))
			sends[r] = dkf.VOp{Buf: sb, Type: l, Count: 1}
			recvs[r] = make([]dkf.VOp, n)
			for src := 0; src < n; src++ {
				rb := sess.Alloc(r, fmt.Sprintf("ag-r-%d", src), int(l.ExtentBytes))
				recvs[r][src] = dkf.VOp{Buf: rb, Type: l, Count: 1}
				flat = append(flat, rb)
			}
		}
		err = sess.Run(func(c *dkf.RankCtx) {
			if cerr := c.Allgatherv(sends[c.ID()], recvs[c.ID()]); cerr != nil {
				t.Errorf("rank %d: %v", c.ID(), cerr)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if n := sess.LeakedRequests(); n != 0 {
			t.Fatalf("%d leaked requests", n)
		}
		return flat, sess.RMAStats()
	}
	rmaBufs, rmaStats := run(dkf.BackendRMA)
	p2pBufs, p2pStats := run(dkf.BackendP2P)
	for i := range rmaBufs {
		if got, want := rmaBufs[i].Checksum(), p2pBufs[i].Checksum(); got != want {
			t.Fatalf("leg %d: rma backend checksum %#x differs from p2p %#x", i, got, want)
		}
	}
	if rmaStats.PackPuts == 0 {
		t.Fatalf("rma backend issued no pack-puts: %+v", rmaStats)
	}
	if p2pStats.Puts != 0 || p2pStats.PackPuts != 0 {
		t.Fatalf("p2p backend touched the one-sided fabric: %+v", p2pStats)
	}
}

// TestRMAQuietSurfacesFailure: a put that exhausts its retransmissions
// surfaces a typed *RMAOpError from RankCtx.Quiet.
func TestRMAQuietSurfacesFailure(t *testing.T) {
	plan, err := dkf.ParseFaultPlan("rmadrop=1.0,seed=4")
	if err != nil {
		t.Fatal(err)
	}
	spec := dkf.SystemLassen.Spec()
	spec.Nodes, spec.GPUsPerNode = 2, 1
	sess, err := dkf.NewSession(dkf.SessionConfig{
		CustomSpec:   &spec,
		Faults:       plan,
		StallTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs := []*dkf.Buffer{sess.Alloc(0, "s", 512), sess.Alloc(1, "s", 512)}
	err = sess.Run(func(c *dkf.RankCtx) {
		win, werr := c.Window("w", 512)
		if werr != nil {
			t.Errorf("rank %d: %v", c.ID(), werr)
			return
		}
		right := (c.ID() + 1) % c.NumRanks()
		if perr := c.Put(win, right, 0, srcs[c.ID()], 0, 512); perr != nil {
			t.Errorf("rank %d put: %v", c.ID(), perr)
		}
		qerr := c.Quiet()
		var oe *dkf.RMAOpError
		if !errors.As(qerr, &oe) || !errors.Is(qerr, dkf.ErrRMARetriesExhausted) {
			t.Errorf("rank %d: quiet returned %v, want *RMAOpError wrapping ErrRMARetriesExhausted", c.ID(), qerr)
		}
		c.Barrier()
		if cerr := c.CloseWindow(win); cerr != nil {
			t.Errorf("rank %d close: %v", c.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBackendConfig pins ParseBackend and the validation error for an
// out-of-range Backend value.
func TestBackendConfig(t *testing.T) {
	for s, want := range map[string]dkf.Backend{"p2p": dkf.BackendP2P, "rma": dkf.BackendRMA} {
		got, err := dkf.ParseBackend(s)
		if err != nil || got != want {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() != s {
			t.Fatalf("%v.String() = %q, want %q", want, got.String(), s)
		}
	}
	if _, err := dkf.ParseBackend("nvshmem"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend")
	}
	_, err := dkf.NewSession(dkf.SessionConfig{Backend: dkf.Backend(7)})
	var ce *dkf.ConfigError
	if !errors.As(err, &ce) || ce.Option != "Backend" {
		t.Fatalf("NewSession(Backend:7) = %v, want *ConfigError on Backend", err)
	}
}
