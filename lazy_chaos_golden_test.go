package dkf_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	dkf "repro"
)

// lazyChaosTrace runs the canonical lazy-mode rank-crash recovery scenario
// with tracing enabled: 4 lazy-payload ranks, a planned crash of rank 1
// mid-Alltoallw, Agree + Shrink, and a checksum-verified retry on the
// survivor communicator. Returns the session plus its Chrome trace bytes.
func lazyChaosTrace(t *testing.T) (*dkf.Session, []byte) {
	t.Helper()
	const deadRank = 1
	spec := dkf.SystemLassen.Spec()
	spec.Nodes = 2
	spec.GPUsPerNode = 2
	plan, err := dkf.ParseFaultPlan(fmt.Sprintf("crash=%d@20000", deadRank))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dkf.NewSession(dkf.SessionConfig{
		CustomSpec:    &spec,
		Scheme:        dkf.SchemeProposedTuned,
		Trace:         &dkf.TraceOptions{},
		Faults:        plan,
		Payload:       dkf.PayloadLazy,
		LazyThreshold: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := sess.NumRanks()
	l := dkf.Commit(dkf.Contiguous(1024, dkf.Byte))
	blk := int(l.ExtentBytes)
	rsend := make([][]*dkf.Buffer, n)
	rrecv := make([][]*dkf.Buffer, n)
	for r := 0; r < n; r++ {
		rsend[r] = make([]*dkf.Buffer, n-1)
		rrecv[r] = make([]*dkf.Buffer, n-1)
		for p := 0; p < n-1; p++ {
			rsend[r][p] = sess.Alloc(r, fmt.Sprintf("rs%d", p), blk)
			rrecv[r][p] = sess.Alloc(r, fmt.Sprintf("rr%d", p), blk)
			rsend[r][p].FillStream(uint64(1000 + r*n + p))
		}
	}
	worldErrs := make([]error, n)
	retryErrs := make([]error, n)
	err = sess.Run(func(c *dkf.RankCtx) {
		me := c.ID()
		ops := make([]dkf.WOp, n)
		for p := 0; p < n; p++ {
			ops[p] = dkf.WOp{
				SendBuf: c.Alloc(fmt.Sprintf("ws%d", p), blk), SendType: l, SendCount: 1,
				RecvBuf: c.Alloc(fmt.Sprintf("wr%d", p), blk), RecvType: l, RecvCount: 1,
			}
		}
		const horizonNs = 400_000
		for worldErrs[me] == nil && c.Now() < horizonNs {
			worldErrs[me] = c.Alltoallw(ops)
		}
		c.Agree(c.World(), 1)
		sub, serr := c.Shrink(c.World())
		if serr != nil {
			retryErrs[me] = serr
			return
		}
		cc := c.On(sub)
		retry := make([]dkf.WOp, cc.Size())
		for p := range retry {
			retry[p] = dkf.WOp{
				SendBuf: rsend[me][p], SendType: l, SendCount: 1,
				RecvBuf: rrecv[me][p], RecvType: l, RecvCount: 1,
			}
		}
		retryErrs[me] = cc.Alltoallw(retry)
	})
	if err != nil {
		t.Fatal(err)
	}
	survivors := sess.Survivors()
	if len(survivors) != n-1 {
		t.Fatalf("Survivors() = %v, want %d ranks", survivors, n-1)
	}
	for _, w := range survivors {
		if worldErrs[w] == nil {
			t.Fatalf("rank %d: crash never surfaced in the world phase", w)
		}
		if !errors.Is(worldErrs[w], dkf.ErrRankFailed) && !errors.Is(worldErrs[w], dkf.ErrCommRevoked) {
			t.Fatalf("rank %d: untyped world-phase error %v", w, worldErrs[w])
		}
		if retryErrs[w] != nil {
			t.Fatalf("rank %d: retry on survivor comm failed: %v", w, retryErrs[w])
		}
	}
	// Checksum-exact survivor delivery: comm rank q's slot p holds comm
	// rank p's slot-q send content, compared through the span algebra.
	for q, wq := range survivors {
		for p, wp := range survivors {
			if rrecv[wq][p].Checksum() != rsend[wp][q].Checksum() {
				t.Fatalf("retry: comm rank %d slot %d checksum differs from comm rank %d's send", q, p, wp)
			}
		}
	}
	if leaked := sess.LeakedRequests(); leaked != 0 {
		t.Fatalf("LeakedRequests() = %d after lazy recovery, want 0", leaked)
	}
	var b bytes.Buffer
	if err := sess.Timeline().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	return sess, b.Bytes()
}

// TestGoldenLazyChaosTrace pins the Chrome trace of the lazy rank-crash +
// shrink + retry scenario byte-for-byte across two in-process runs AND
// against the committed golden file: crash injection, failure detection,
// revocation, shrink rendezvous, and the retry collective all replay
// bit-identically in lazy payload mode. Refresh with
// UPDATE_GOLDEN=1 go test -run TestGoldenLazyChaosTrace.
func TestGoldenLazyChaosTrace(t *testing.T) {
	_, got := lazyChaosTrace(t)
	_, again := lazyChaosTrace(t)
	if !bytes.Equal(got, again) {
		t.Fatal("lazy chaos trace not byte-identical across two runs")
	}
	golden := filepath.Join("testdata", "golden_lazy_chaos_trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("lazy chaos trace differs from golden %s (len got=%d want=%d); rerun with UPDATE_GOLDEN=1 if intended",
			golden, len(got), len(want))
	}
}
